/**
 * @file
 * Unit tests for the phase classifier: the paper's classification
 * algorithm including the transition phase (section 4.4), best-match
 * selection, phase-ID allocation, LRU-driven ID growth (Figure 2
 * effect) and adaptive threshold halving (section 4.6).
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "phase/classifier.hh"

using namespace tpcp;
using namespace tpcp::phase;

namespace
{

constexpr unsigned kDims = 16;
constexpr InstCount kTotal = 100'000;

/** A raw accumulator vector with mass concentrated by @p shape. */
std::vector<std::uint32_t>
rawFor(unsigned shape, double noise = 0.0, std::uint64_t salt = 0)
{
    Rng rng(salt * 977 + shape);
    std::vector<std::uint32_t> raw(kDims, 0);
    // Three heavy buckets per shape, distinct across shapes.
    unsigned h0 = (shape * 5 + 1) % kDims;
    unsigned h1 = (shape * 5 + 7) % kDims;
    unsigned h2 = (shape * 5 + 11) % kDims;
    raw[h0] = 50'000;
    raw[h1] = 30'000;
    raw[h2] = 20'000;
    if (noise > 0.0) {
        for (auto &c : raw) {
            double f = 1.0 + noise * (rng.nextDouble() - 0.5);
            c = static_cast<std::uint32_t>(c * f);
        }
    }
    return raw;
}

ClassifierConfig
baseConfig()
{
    ClassifierConfig cfg;
    cfg.numCounters = kDims;
    cfg.tableEntries = 32;
    cfg.similarityThreshold = 0.25;
    cfg.minCountThreshold = 0;
    cfg.adaptiveThreshold = false;
    return cfg;
}

} // namespace

TEST(Classifier, FirstIntervalAllocatesPhaseWithoutMinCount)
{
    PhaseClassifier c(baseConfig());
    ClassifyResult r = c.classifyRaw(rawFor(0), kTotal, 1.0);
    EXPECT_TRUE(r.inserted);
    EXPECT_EQ(r.phase, firstStablePhaseId);
    EXPECT_EQ(c.numStablePhases(), 1u);
}

TEST(Classifier, SameCodeSamePhase)
{
    PhaseClassifier c(baseConfig());
    PhaseId first =
        c.classifyRaw(rawFor(0), kTotal, 1.0).phase;
    for (int i = 1; i < 10; ++i) {
        ClassifyResult r = c.classifyRaw(rawFor(0, 0.05, i), kTotal,
                                         1.0);
        EXPECT_TRUE(r.matched);
        EXPECT_EQ(r.phase, first);
    }
    EXPECT_EQ(c.numStablePhases(), 1u);
}

TEST(Classifier, DifferentCodeDifferentPhases)
{
    PhaseClassifier c(baseConfig());
    PhaseId a = c.classifyRaw(rawFor(0), kTotal, 1.0).phase;
    PhaseId b = c.classifyRaw(rawFor(1), kTotal, 2.0).phase;
    PhaseId d = c.classifyRaw(rawFor(2), kTotal, 3.0).phase;
    EXPECT_NE(a, b);
    EXPECT_NE(b, d);
    EXPECT_EQ(c.numStablePhases(), 3u);
}

TEST(Classifier, PhasesReappearWithSameId)
{
    PhaseClassifier c(baseConfig());
    PhaseId a1 = c.classifyRaw(rawFor(0), kTotal, 1.0).phase;
    c.classifyRaw(rawFor(1), kTotal, 2.0);
    PhaseId a2 = c.classifyRaw(rawFor(0, 0.05, 3), kTotal, 1.0).phase;
    EXPECT_EQ(a1, a2) << "a phase may reappear many times (paper 1)";
}

TEST(Classifier, TransitionPhaseUntilMinCount)
{
    ClassifierConfig cfg = baseConfig();
    cfg.minCountThreshold = 4;
    PhaseClassifier c(cfg);
    // The inserting interval is sighting 1 (paper section 4.1: the
    // signature must be "seen min_count times"); insert + 2 matches
    // are still transition.
    EXPECT_EQ(c.classifyRaw(rawFor(0), kTotal, 1.0).phase,
              transitionPhaseId);
    for (int i = 0; i < 2; ++i) {
        EXPECT_EQ(c.classifyRaw(rawFor(0, 0.03, i), kTotal, 1.0)
                      .phase,
                  transitionPhaseId)
            << "match " << i;
    }
    // The 3rd match is the 4th sighting: real phase ID.
    ClassifyResult r = c.classifyRaw(rawFor(0, 0.03, 9), kTotal, 1.0);
    EXPECT_EQ(r.phase, firstStablePhaseId);
    EXPECT_EQ(c.numStablePhases(), 1u);
    EXPECT_EQ(c.stats().transitionIntervals, 3u);
}

TEST(Classifier, MinCountOnePromotesAtInsertion)
{
    // With minCountThreshold == 1 a signature has been "seen once"
    // the moment it is inserted, so the very first interval of a new
    // behavior already gets a stable phase ID. (Pre-fix, promotion
    // needed minCountThreshold + 1 sightings: the inserting interval
    // was not counted.)
    ClassifierConfig cfg = baseConfig();
    cfg.minCountThreshold = 1;
    PhaseClassifier c(cfg);
    ClassifyResult r = c.classifyRaw(rawFor(0), kTotal, 1.0);
    EXPECT_TRUE(r.inserted);
    EXPECT_EQ(r.phase, firstStablePhaseId);
    EXPECT_EQ(c.stats().transitionIntervals, 0u);
    EXPECT_EQ(c.numStablePhases(), 1u);
}

TEST(Classifier, InfrequentBehaviorStaysInTransition)
{
    ClassifierConfig cfg = baseConfig();
    cfg.minCountThreshold = 8;
    PhaseClassifier c(cfg);
    // Many distinct one-off signatures: all transition, no stable
    // phase IDs allocated (the paper's table-pressure win).
    for (unsigned shape = 0; shape < 12; ++shape) {
        ClassifyResult r =
            c.classifyRaw(rawFor(shape), kTotal, 1.0);
        EXPECT_EQ(r.phase, transitionPhaseId);
    }
    EXPECT_EQ(c.numStablePhases(), 0u);
    EXPECT_DOUBLE_EQ(c.stats().transitionFraction(), 1.0);
}

TEST(Classifier, MinCountZeroDisablesTransitionPhase)
{
    PhaseClassifier c(baseConfig());
    for (unsigned shape = 0; shape < 5; ++shape)
        c.classifyRaw(rawFor(shape), kTotal, 1.0);
    EXPECT_EQ(c.stats().transitionIntervals, 0u);
    EXPECT_EQ(c.numStablePhases(), 5u);
}

TEST(Classifier, EvictionRegeneratesPhaseIds)
{
    // The Figure-2 effect: a small table loses signatures and hands
    // out fresh IDs when behaviors recur.
    ClassifierConfig cfg = baseConfig();
    cfg.tableEntries = 2;
    PhaseClassifier small(cfg);
    cfg.tableEntries = 0;
    PhaseClassifier unbounded(cfg);

    for (int round = 0; round < 4; ++round) {
        for (unsigned shape = 0; shape < 4; ++shape) {
            small.classifyRaw(rawFor(shape), kTotal, 1.0);
            unbounded.classifyRaw(rawFor(shape), kTotal, 1.0);
        }
    }
    EXPECT_EQ(unbounded.numStablePhases(), 4u);
    EXPECT_GT(small.numStablePhases(), 8u)
        << "evictions force re-allocation of phase IDs";
}

TEST(Classifier, BestMatchChoosesMostSimilar)
{
    ClassifierConfig cfg = baseConfig();
    cfg.similarityThreshold = 0.9; // everything matches everything
    PhaseClassifier c(cfg);
    PhaseId a = c.classifyRaw(rawFor(0), kTotal, 1.0).phase;
    // rawFor(1) matches the permissive threshold but is farther; a
    // new interval near shape 0 must classify back into phase a.
    c.classifyRaw(rawFor(1), kTotal, 1.0);
    ClassifyResult r = c.classifyRaw(rawFor(0, 0.02, 5), kTotal, 1.0);
    EXPECT_EQ(r.phase, a);
}

TEST(Classifier, MatchReplacesStoredSignature)
{
    // Signature creep: after matching, the entry holds the *current*
    // signature, letting a phase track slow drift (section 4.6
    // discussion / mcf behavior).
    PhaseClassifier c(baseConfig());
    c.classifyRaw(rawFor(0), kTotal, 1.0);
    // Drift in small steps; each step within threshold of the last.
    std::vector<std::uint32_t> raw = rawFor(0);
    PhaseId last = firstStablePhaseId;
    for (int step = 0; step < 6; ++step) {
        raw[0] += 4000;
        raw[15] += 3000;
        ClassifyResult r = c.classifyRaw(raw, kTotal, 1.0);
        EXPECT_EQ(r.phase, last) << "drift step " << step;
    }
}

TEST(Classifier, AdaptiveHalvesThresholdOnCpiDeviation)
{
    ClassifierConfig cfg = baseConfig();
    cfg.adaptiveThreshold = true;
    cfg.cpiDeviationThreshold = 0.25;
    PhaseClassifier c(cfg);
    c.classifyRaw(rawFor(0), kTotal, 2.0);
    c.classifyRaw(rawFor(0, 0.02, 1), kTotal, 2.1); // fine
    EXPECT_EQ(c.stats().thresholdHalvings, 0u);
    // CPI deviates 50% from the running average: halve.
    ClassifyResult r = c.classifyRaw(rawFor(0, 0.02, 2), kTotal, 3.1);
    EXPECT_TRUE(r.thresholdHalved);
    EXPECT_EQ(c.stats().thresholdHalvings, 1u);
    EXPECT_NEAR(c.table().threshold(0), 0.125, 1e-9);
    EXPECT_EQ(c.table().meta(0).cpi.count(), 1u)
        << "stats cleared then re-seeded with the current interval";
}

TEST(Classifier, AdaptiveRespectsFloor)
{
    ClassifierConfig cfg = baseConfig();
    cfg.adaptiveThreshold = true;
    cfg.cpiDeviationThreshold = 0.1;
    cfg.thresholdFloor = 0.1;
    PhaseClassifier c(cfg);
    double cpi = 1.0;
    c.classifyRaw(rawFor(0), kTotal, cpi);
    for (int i = 0; i < 10; ++i) {
        cpi *= 1.5; // always deviating
        c.classifyRaw(rawFor(0, 0.01, i), kTotal, cpi);
    }
    for (std::uint32_t i = 0; i < c.table().size(); ++i)
        EXPECT_GE(c.table().threshold(i), 0.1);
}

TEST(Classifier, StaticConfigNeverHalves)
{
    PhaseClassifier c(baseConfig());
    c.classifyRaw(rawFor(0), kTotal, 1.0);
    c.classifyRaw(rawFor(0, 0.02, 1), kTotal, 100.0);
    EXPECT_EQ(c.stats().thresholdHalvings, 0u);
}

TEST(Classifier, FlushPerformanceFeedbackKeepsPhases)
{
    ClassifierConfig cfg = baseConfig();
    cfg.adaptiveThreshold = true;
    PhaseClassifier c(cfg);
    PhaseId a = c.classifyRaw(rawFor(0), kTotal, 1.0).phase;
    c.flushPerformanceFeedback();
    // A wildly different CPI right after the flush must not halve
    // (no average to deviate from), and the phase ID is stable.
    ClassifyResult r =
        c.classifyRaw(rawFor(0, 0.02, 1), kTotal, 50.0);
    EXPECT_EQ(r.phase, a);
    EXPECT_FALSE(r.thresholdHalved);
}

TEST(Classifier, OnlineApiMatchesReplayApi)
{
    // recordBranch+endInterval must equal classifyRaw given the same
    // accumulator contents.
    ClassifierConfig cfg = baseConfig();
    PhaseClassifier online(cfg);
    PhaseClassifier replay(cfg);

    Rng rng(std::uint64_t{12});
    for (int interval = 0; interval < 20; ++interval) {
        AccumulatorTable acc(cfg.numCounters, cfg.counterBits);
        unsigned shape = interval % 3;
        for (int b = 0; b < 200; ++b) {
            Addr pc = 0x1000 * (shape + 1) +
                      4 * rng.nextBounded(8);
            online.recordBranch(pc, 13);
            acc.recordBranch(pc, 13);
        }
        ClassifyResult a = online.endInterval(1.0 + shape);
        ClassifyResult b = replay.classifyRaw(
            acc.counters(), acc.totalIncrement(), 1.0 + shape);
        EXPECT_EQ(a.phase, b.phase) << "interval " << interval;
    }
}

TEST(Classifier, StatsConsistency)
{
    ClassifierConfig cfg = baseConfig();
    cfg.minCountThreshold = 8;
    PhaseClassifier c(cfg);
    for (int i = 0; i < 30; ++i)
        c.classifyRaw(rawFor(static_cast<unsigned>(i % 2), 0.02,
                             static_cast<std::uint64_t>(i)),
                      kTotal, 1.0);
    EXPECT_EQ(c.stats().intervals, 30u);
    EXPECT_LE(c.stats().transitionIntervals, 30u);
    EXPECT_GE(c.stats().insertions, 2u);
}

TEST(Classifier, RejectsWrongDimensionality)
{
    PhaseClassifier c(baseConfig());
    std::vector<std::uint32_t> wrong(8, 100);
    EXPECT_DEATH(c.classifyRaw(wrong, kTotal, 1.0),
                 "dimensionality");
}

TEST(Classifier, EvictionsSurfacedInStats)
{
    ClassifierConfig cfg = baseConfig();
    cfg.tableEntries = 2;
    PhaseClassifier c(cfg);
    for (unsigned shape = 0; shape < 6; ++shape)
        c.classifyRaw(rawFor(shape), kTotal, 1.0);
    EXPECT_GT(c.stats().evictions, 0u);
    EXPECT_EQ(c.stats().evictions, c.table().evictions())
        << "classifier stats mirror the table's eviction counter";
}

TEST(Classifier, EvictedPhaseGetsFreshIdOnRecurrence)
{
    // Intended hardware behavior: once LRU replacement drops a
    // phase's signature, the classifier has no memory of it — the
    // same code recurring is a *new* signature and receives a fresh
    // phase ID, not its old one.
    ClassifierConfig cfg = baseConfig();
    cfg.tableEntries = 2;
    PhaseClassifier c(cfg);
    PhaseId a = c.classifyRaw(rawFor(0), kTotal, 1.0).phase;
    // Two different behaviors fill the 2-entry table and evict A.
    c.classifyRaw(rawFor(1), kTotal, 1.0);
    c.classifyRaw(rawFor(2), kTotal, 1.0);
    EXPECT_GT(c.table().evictions(), 0u);
    ClassifyResult r = c.classifyRaw(rawFor(0), kTotal, 1.0);
    EXPECT_TRUE(r.inserted) << "the old signature is gone";
    EXPECT_NE(r.phase, a) << "recurrence after eviction = fresh ID";
}

TEST(Classifier, BatchedRecordBranchesMatchesSerial)
{
    ClassifierConfig cfg = baseConfig();
    PhaseClassifier serial(cfg);
    PhaseClassifier batched(cfg);

    Rng rng(std::uint64_t{77});
    for (int interval = 0; interval < 12; ++interval) {
        std::vector<BranchEvent> events;
        unsigned shape = interval % 3;
        for (int b = 0; b < 300; ++b) {
            // Large increments exercise saturation equivalence too.
            events.push_back({0x2000 * (shape + 1) +
                                  4 * rng.nextBounded(16),
                              7 + rng.nextBounded(50000)});
        }
        for (const BranchEvent &ev : events)
            serial.recordBranch(ev.pc, ev.insts);
        batched.recordBranches(events.data(), events.size());

        ClassifyResult a = serial.endInterval(1.0 + shape);
        ClassifyResult b = batched.endInterval(1.0 + shape);
        EXPECT_EQ(a.phase, b.phase) << "interval " << interval;
        EXPECT_EQ(a.matched, b.matched) << "interval " << interval;
        EXPECT_DOUBLE_EQ(a.distance, b.distance)
            << "interval " << interval;
    }
}
