/**
 * @file
 * Bit-identity of the vectorized classify hot path against the
 * scalar reference at the component level: SignatureTable::match
 * across dispatch levels (both policies, quarantined entries,
 * weight-0 signatures), the batched classifyIntervals() against
 * per-interval classifyRaw(), the O(1) LRU eviction order against a
 * reference min-lastUse rescan, and the per-tenant table shards.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <vector>

#include "common/rng.hh"
#include "common/simd.hh"
#include "common/state_io.hh"
#include "phase/classifier.hh"
#include "phase/signature_table.hh"
#include "phase/table_shards.hh"

using namespace tpcp;
using namespace tpcp::phase;

namespace
{

std::vector<simd::Level>
availableLevels()
{
    std::vector<simd::Level> out;
    for (simd::Level l :
         {simd::Level::Scalar, simd::Level::Sse2, simd::Level::Avx2,
          simd::Level::Neon}) {
        if (simd::forceLevel(l) == l)
            out.push_back(l);
    }
    return out;
}

struct LevelGuard
{
    simd::Level saved = simd::active();
    ~LevelGuard() { simd::forceLevel(saved); }
};

std::vector<std::uint8_t>
randomRow(Rng &rng, unsigned dims, unsigned max_val)
{
    std::vector<std::uint8_t> d(dims);
    for (auto &v : d)
        v = static_cast<std::uint8_t>(rng.nextBounded(max_val));
    return d;
}

/** Builds a table with a mix of ordinary, near-duplicate, weight-0
 * and (optionally) quarantined entries. */
SignatureTable
buildTable(Rng &rng, unsigned entries, unsigned dims,
           bool with_quarantined, bool with_zero_weight)
{
    SignatureTable table(0, 6); // unbounded, parity-tracked
    for (unsigned i = 0; i < entries; ++i) {
        std::vector<std::uint8_t> row;
        if (with_zero_weight && i % 7 == 3) {
            row.assign(dims, 0); // all-zero signature, weight 0
        } else if (i > 0 && i % 5 == 4) {
            // Near-duplicate of the previous row: clustered entries
            // with overlapping thresholds force real
            // best-vs-first-match divergence.
            Signature prev = table.signatureAt(i - 1);
            row.assign(prev.data(), prev.data() + dims);
            row[rng.nextBounded(dims)] ^= 1;
        } else {
            row = randomRow(rng, dims, 64);
        }
        double threshold = 0.05 + 0.2 * rng.nextDouble();
        table.insert(Signature(row, 6), threshold);
    }
    if (with_quarantined) {
        for (unsigned i = 0; i < entries; i += 4) {
            // Two flipped bits: uncorrectable, quarantines the entry.
            table.flipSignatureBit(i, 1);
            table.flipSignatureBit(i, 9);
            EXPECT_FALSE(table.checkParityAt(i));
        }
    }
    return table;
}

} // namespace

TEST(SimdMatchEquivalence, AllLevelsAgreeWithScalarBothPolicies)
{
    LevelGuard guard;
    Rng rng(std::uint64_t{0xabcd});
    for (unsigned dims : {8u, 16u, 32u, 48u}) {
        for (bool quarantine : {false, true}) {
            for (bool zeroWeight : {false, true}) {
                SignatureTable table = buildTable(
                    rng, 37, dims, quarantine, zeroWeight);
                for (int probe = 0; probe < 64; ++probe) {
                    std::vector<std::uint8_t> q;
                    if (probe % 9 == 5)
                        q.assign(dims, 0); // weight-0 query
                    else if (probe % 2 == 0)
                        q = randomRow(rng, dims, 64);
                    else {
                        // Perturbation of a stored row: likely hit.
                        Signature s = table.signatureAt(
                            rng.nextBounded(37));
                        q.assign(s.data(), s.data() + dims);
                        for (int k = 0; k < 3; ++k)
                            q[rng.nextBounded(dims)] ^= 1;
                    }
                    std::uint32_t weight = 0;
                    for (std::uint8_t v : q)
                        weight += v;
                    for (MatchPolicy policy :
                         {MatchPolicy::FirstMatch,
                          MatchPolicy::BestMatch}) {
                        ASSERT_EQ(simd::forceLevel(
                                      simd::Level::Scalar),
                                  simd::Level::Scalar);
                        auto ref = table.match(q.data(), dims, weight,
                                               policy);
                        for (simd::Level l : availableLevels()) {
                            ASSERT_EQ(simd::forceLevel(l), l);
                            auto got = table.match(q.data(), dims,
                                                   weight, policy);
                            ASSERT_EQ(got.index, ref.index)
                                << "level=" << simd::levelName(l)
                                << " dims=" << dims
                                << " quarantine=" << quarantine
                                << " zeroWeight=" << zeroWeight;
                            // Bit-identical distance, not just close.
                            ASSERT_EQ(got.distance, ref.distance)
                                << "level=" << simd::levelName(l)
                                << " dims=" << dims;
                        }
                    }
                }
            }
        }
    }
}

TEST(SimdMatchEquivalence, SignatureMatchOverloadAgrees)
{
    LevelGuard guard;
    Rng rng(std::uint64_t{0x1111});
    SignatureTable table = buildTable(rng, 16, 16, false, false);
    Signature probe(randomRow(rng, 16, 64), 6);
    ASSERT_EQ(simd::forceLevel(simd::Level::Scalar),
              simd::Level::Scalar);
    auto ref = table.match(probe, MatchPolicy::BestMatch);
    for (simd::Level l : availableLevels()) {
        ASSERT_EQ(simd::forceLevel(l), l);
        auto got = table.match(probe, MatchPolicy::BestMatch);
        EXPECT_EQ(got.index, ref.index);
        EXPECT_EQ(got.distance, ref.distance);
    }
}

TEST(BatchedClassify, MatchesSequentialClassifyRaw)
{
    LevelGuard guard;
    for (simd::Level l : availableLevels()) {
        ASSERT_EQ(simd::forceLevel(l), l);
        Rng rng(std::uint64_t{0x5150});
        ClassifierConfig cfg = ClassifierConfig::paperDefault();
        // Generate a phase-like snapshot stream.
        std::vector<std::vector<std::uint32_t>> raws;
        std::vector<InstCount> totals;
        std::vector<double> cpis;
        for (int i = 0; i < 600; ++i) {
            std::vector<std::uint32_t> raw(cfg.numCounters);
            unsigned shape = (i / 40) % 6;
            InstCount total = 0;
            for (unsigned c = 0; c < cfg.numCounters; ++c) {
                raw[c] = ((c + shape) % 4 == 0)
                             ? 500 + rng.nextBounded(80)
                             : rng.nextBounded(30);
                total += raw[c];
            }
            raws.push_back(std::move(raw));
            totals.push_back(total * 12);
            cpis.push_back(0.5 + rng.nextDouble());
        }
        PhaseClassifier sequential(cfg);
        PhaseClassifier batched(cfg);
        std::vector<ClassifyResult> want;
        for (std::size_t i = 0; i < raws.size(); ++i)
            want.push_back(sequential.classifyRaw(raws[i], totals[i],
                                                  cpis[i]));
        std::vector<RawInterval> views(raws.size());
        for (std::size_t i = 0; i < raws.size(); ++i)
            views[i] = {raws[i].data(), totals[i], cpis[i]};
        std::vector<ClassifyResult> got(views.size());
        batched.classifyIntervals(views.data(), views.size(),
                                  got.data());
        for (std::size_t i = 0; i < want.size(); ++i) {
            ASSERT_EQ(got[i].phase, want[i].phase) << "interval " << i;
            ASSERT_EQ(got[i].matched, want[i].matched);
            ASSERT_EQ(got[i].inserted, want[i].inserted);
            ASSERT_EQ(got[i].distance, want[i].distance);
        }
        // Final classifier state must be identical too.
        StateWriter seqW, batW;
        sequential.saveState(seqW);
        batched.saveState(batW);
        EXPECT_EQ(seqW.buffer(), batW.buffer())
            << "level=" << simd::levelName(l);
    }
}

TEST(LruEviction, MatchesReferenceMinLastUseScan)
{
    // Drive a capacity-4 table through a long insert/touch stream and
    // mirror it with a reference model that picks victims by the old
    // O(n) min-lastUse rescan; the inserted-key sequence per slot
    // must stay identical.
    Rng rng(std::uint64_t{0xfeed});
    constexpr unsigned kCap = 4;
    constexpr unsigned kDims = 16;
    SignatureTable table(kCap, 6);
    std::vector<std::uint64_t> refLastUse; // reference model
    std::vector<unsigned> refKey;
    std::vector<unsigned> tableKey; // key stored per live slot
    std::uint64_t tick = 0;
    for (int step = 0; step < 4000; ++step) {
        if (!refKey.empty() && rng.nextBool(0.5)) {
            // Touch (or replace+touch) a random live entry, exactly
            // as the classifier's matched path does.
            std::uint32_t idx = rng.nextBounded(
                static_cast<std::uint32_t>(refKey.size()));
            auto row = randomRow(rng, kDims, 64);
            table.replaceSignature(idx, row.data(), kDims, 100);
            table.touch(idx);
            refLastUse[idx] = ++tick;
        } else {
            unsigned key = static_cast<unsigned>(step);
            auto row = randomRow(rng, kDims, 64);
            std::uint32_t idx = table.insert(row.data(), kDims, 100,
                                             0.25, 6);
            std::uint32_t refIdx;
            if (refKey.size() < kCap) {
                refKey.push_back(0);
                refLastUse.push_back(0);
                tableKey.push_back(0);
                refIdx = static_cast<std::uint32_t>(
                    refKey.size() - 1);
            } else {
                // The replaced reference victim: O(n) min rescan.
                refIdx = 0;
                for (std::uint32_t i = 1; i < refLastUse.size(); ++i)
                    if (refLastUse[i] < refLastUse[refIdx])
                        refIdx = i;
            }
            ASSERT_EQ(idx, refIdx) << "step " << step;
            refKey[refIdx] = key;
            refLastUse[refIdx] = ++tick;
            tableKey[idx] = key;
        }
    }
    EXPECT_EQ(table.size(), kCap);
}

TEST(LruEviction, SurvivesSaveLoadRoundTrip)
{
    Rng rng(std::uint64_t{0xcafe});
    constexpr unsigned kCap = 8;
    constexpr unsigned kDims = 16;
    SignatureTable table(kCap, 6);
    for (unsigned i = 0; i < kCap; ++i) {
        auto row = randomRow(rng, kDims, 64);
        table.insert(row.data(), kDims, 50 + i, 0.25, 6);
    }
    // Shuffle recency.
    for (int i = 0; i < 50; ++i)
        table.touch(rng.nextBounded(kCap));

    StateWriter saved;
    table.saveState(saved);
    SignatureTable loaded(kCap, 6);
    {
        StateReader r(saved.buffer());
        loaded.loadState(r);
    }
    // The reload must preserve the eviction order: insert kCap new
    // rows into both tables and require identical victim slots.
    for (unsigned i = 0; i < kCap; ++i) {
        auto row = randomRow(rng, kDims, 64);
        std::uint32_t a = table.insert(row.data(), kDims, 10, 0.25, 6);
        std::uint32_t b = loaded.insert(row.data(), kDims, 10, 0.25,
                                        6);
        ASSERT_EQ(a, b) << "insert " << i;
    }
    // And the state streams must still agree byte for byte.
    StateWriter wA, wB;
    table.saveState(wA);
    loaded.saveState(wB);
    EXPECT_EQ(wA.buffer(), wB.buffer());
}

TEST(TableShards, TenantsMapStablyAndShardsAreIndependent)
{
    SignatureTableShards shards(4, 32, 6);
    EXPECT_EQ(shards.numShards(), 4u);
    // Stable mapping.
    for (std::uint64_t t : {1ull, 42ull, 0xdeadbeefull}) {
        unsigned s = shards.shardOf(t);
        EXPECT_EQ(shards.shardOf(t), s);
        EXPECT_LT(s, 4u);
        EXPECT_EQ(&shards.tableFor(t), &shards.shard(s));
    }
    // Inserting into one tenant's shard is invisible to a tenant on
    // a different shard.
    std::uint64_t a = 1;
    std::uint64_t b = 2;
    while (shards.shardOf(b) == shards.shardOf(a))
        ++b;
    Rng rng(std::uint64_t{0x5eed});
    auto row = randomRow(rng, 16, 64);
    shards.tableFor(a).insert(row.data(), 16, 100, 0.25, 6);
    EXPECT_EQ(shards.tableFor(a).size(), 1u);
    EXPECT_EQ(shards.tableFor(b).size(), 0u);
    EXPECT_EQ(shards.size(), 1u);
    // The other tenant's matches can never see tenant a's signature.
    std::uint32_t weight = 0;
    for (std::uint8_t v : row)
        weight += v;
    auto m = shards.tableFor(b).match(row.data(), 16, weight,
                                      MatchPolicy::BestMatch);
    EXPECT_FALSE(m);
    auto hit = shards.tableFor(a).match(row.data(), 16, weight,
                                        MatchPolicy::BestMatch);
    EXPECT_TRUE(hit);

    shards.clear();
    EXPECT_EQ(shards.size(), 0u);
}

TEST(TableShards, SaveLoadRoundTripsEveryShard)
{
    Rng rng(std::uint64_t{0x404});
    SignatureTableShards shards(3, 8, 6);
    for (std::uint64_t t = 0; t < 24; ++t) {
        auto row = randomRow(rng, 16, 64);
        shards.tableFor(t).insert(row.data(), 16, 100, 0.25, 6);
    }
    StateWriter saved;
    shards.saveState(saved);
    SignatureTableShards loaded(3, 8, 6);
    {
        StateReader r(saved.buffer());
        loaded.loadState(r);
    }
    EXPECT_EQ(loaded.size(), shards.size());
    StateWriter saved2;
    loaded.saveState(saved2);
    EXPECT_EQ(saved2.buffer(), saved.buffer());
}
