/**
 * @file
 * Unit tests for the accumulator table (paper Figure 1, step 2).
 */

#include <gtest/gtest.h>

#include <numeric>

#include "phase/accumulator_table.hh"

using namespace tpcp;
using namespace tpcp::phase;

TEST(AccumulatorTable, StartsZeroed)
{
    AccumulatorTable acc(16);
    EXPECT_EQ(acc.numCounters(), 16u);
    EXPECT_EQ(acc.totalIncrement(), 0u);
    for (auto c : acc.counters())
        EXPECT_EQ(c, 0u);
}

TEST(AccumulatorTable, RecordAddsToExactlyOneCounter)
{
    AccumulatorTable acc(16);
    acc.recordBranch(0x4000, 12);
    std::uint64_t sum = std::accumulate(acc.counters().begin(),
                                        acc.counters().end(), 0ull);
    EXPECT_EQ(sum, 12u);
    EXPECT_EQ(acc.totalIncrement(), 12u);
}

TEST(AccumulatorTable, SamePcSameCounter)
{
    AccumulatorTable acc(16);
    acc.recordBranch(0x4000, 5);
    acc.recordBranch(0x4000, 7);
    int nonzero = 0;
    for (auto c : acc.counters()) {
        if (c) {
            ++nonzero;
            EXPECT_EQ(c, 12u);
        }
    }
    EXPECT_EQ(nonzero, 1);
}

TEST(AccumulatorTable, DifferentPcsSpread)
{
    AccumulatorTable acc(16);
    for (Addr pc = 0x4000; pc < 0x4000 + 256 * 4; pc += 4)
        acc.recordBranch(pc, 1);
    int nonzero = 0;
    for (auto c : acc.counters())
        nonzero += c ? 1 : 0;
    EXPECT_GE(nonzero, 14) << "hash must spread branch PCs";
}

TEST(AccumulatorTable, TotalTracksAllIncrements)
{
    AccumulatorTable acc(8);
    for (int i = 0; i < 100; ++i)
        acc.recordBranch(0x4000 + 4 * (i % 13), 10);
    EXPECT_EQ(acc.totalIncrement(), 1000u);
}

TEST(AccumulatorTable, CounterSaturatesAtWidth)
{
    AccumulatorTable acc(1, 8); // single 8-bit counter
    acc.recordBranch(0x4000, 200);
    acc.recordBranch(0x4000, 200);
    EXPECT_EQ(acc.counters()[0], 255u) << "saturates, never wraps";
    EXPECT_EQ(acc.totalIncrement(), 400u)
        << "total is tracked exactly";
}

TEST(AccumulatorTable, TwentyFourBitNeverOverflowsAtPaperScale)
{
    // 10M-instruction intervals fit in 24-bit counters (paper 4.2).
    AccumulatorTable acc(1, 24);
    acc.recordBranch(0x4000, 10'000'000);
    EXPECT_EQ(acc.counters()[0], 10'000'000u);
    EXPECT_LT(acc.counters()[0], 1u << 24);
}

TEST(AccumulatorTable, ResetClears)
{
    AccumulatorTable acc(16);
    acc.recordBranch(0x4000, 5);
    acc.reset();
    EXPECT_EQ(acc.totalIncrement(), 0u);
    for (auto c : acc.counters())
        EXPECT_EQ(c, 0u);
}

TEST(AccumulatorTable, DeterministicHashAcrossInstances)
{
    AccumulatorTable a(32), b(32);
    a.recordBranch(0xdead0, 3);
    b.recordBranch(0xdead0, 3);
    EXPECT_EQ(a.counters(), b.counters());
}
