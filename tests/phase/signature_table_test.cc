/**
 * @file
 * Unit tests for the Past Signature Table: threshold matching,
 * best-vs-first match policies, LRU replacement, per-entry state,
 * index stability of the structure-of-arrays storage, and the
 * eviction/reset semantics the classifier depends on.
 */

#include <gtest/gtest.h>

#include "common/state_io.hh"
#include "common/status.hh"
#include "phase/signature_table.hh"

using namespace tpcp;
using namespace tpcp::phase;

namespace
{

Signature
sig(std::vector<std::uint8_t> dims)
{
    return Signature(std::move(dims), 6);
}

} // namespace

TEST(SignatureTable, EmptyNoMatch)
{
    SignatureTable t(32, 6);
    EXPECT_FALSE(t.match(sig({1, 2, 3}), MatchPolicy::BestMatch));
    EXPECT_EQ(t.size(), 0u);
}

TEST(SignatureTable, InsertThenExactMatch)
{
    SignatureTable t(32, 6);
    t.insert(sig({10, 20, 30}), 0.25);
    auto m = t.match(sig({10, 20, 30}), MatchPolicy::BestMatch);
    ASSERT_TRUE(m);
    EXPECT_DOUBLE_EQ(m.distance, 0.0);
    EXPECT_EQ(t.size(), 1u);
}

TEST(SignatureTable, ThresholdIsExclusive)
{
    SignatureTable t(32, 6);
    // weight 40 + 40; a distance of 20 -> difference 0.25 exactly.
    t.insert(sig({40, 0}), 0.25);
    EXPECT_FALSE(t.match(sig({20, 20}), MatchPolicy::BestMatch))
        << "difference must be strictly below the threshold";
    // distance 10 -> difference 10/75 ~ 0.133 < 0.25: matches.
    EXPECT_TRUE(t.match(sig({35, 0}), MatchPolicy::BestMatch));
}

TEST(SignatureTable, MatchReportsNormalizedDistance)
{
    SignatureTable t(32, 6);
    t.insert(sig({40, 0}), 0.25);
    auto m = t.match(sig({35, 0}), MatchPolicy::BestMatch);
    ASSERT_TRUE(m);
    EXPECT_DOUBLE_EQ(m.distance, 5.0 / 75.0);
}

TEST(SignatureTable, BestMatchPicksClosest)
{
    SignatureTable t(32, 6);
    std::uint32_t far = t.insert(sig({30, 10}), 1.0);
    t.meta(far).phase = 1;
    std::uint32_t near = t.insert(sig({22, 18}), 1.0);
    t.meta(near).phase = 2;
    auto best = t.match(sig({20, 20}), MatchPolicy::BestMatch);
    ASSERT_TRUE(best);
    EXPECT_EQ(t.meta(best.index).phase, 2u);
}

TEST(SignatureTable, FirstMatchPicksFirstInTableOrder)
{
    SignatureTable t(32, 6);
    std::uint32_t first = t.insert(sig({30, 10}), 1.0);
    t.meta(first).phase = 1;
    std::uint32_t closer = t.insert(sig({22, 18}), 1.0);
    t.meta(closer).phase = 2;
    auto got = t.match(sig({20, 20}), MatchPolicy::FirstMatch);
    ASSERT_TRUE(got);
    EXPECT_EQ(t.meta(got.index).phase, 1u)
        << "prior work [25] takes the first satisfying entry";
}

TEST(SignatureTable, PerEntryThresholdRespected)
{
    SignatureTable t(32, 6);
    std::uint32_t tight = t.insert(sig({40, 0}), 0.05);
    t.meta(tight).phase = 1;
    // Difference ~0.07 fails the tightened 5% threshold.
    EXPECT_FALSE(t.match(sig({37, 3}), MatchPolicy::BestMatch));
    t.setThreshold(tight, 0.25);
    EXPECT_TRUE(t.match(sig({37, 3}), MatchPolicy::BestMatch));
}

TEST(SignatureTable, LruEvictionAtCapacity)
{
    SignatureTable t(2, 6);
    std::uint32_t a = t.insert(sig({63, 0}), 0.25);
    t.meta(a).phase = 1;
    std::uint32_t b = t.insert(sig({0, 63}), 0.25);
    t.meta(b).phase = 2;
    // Touch A so B is LRU; inserting C evicts B.
    t.touch(t.match(sig({63, 0}), MatchPolicy::BestMatch).index);
    t.insert(sig({32, 32}), 0.25);
    EXPECT_EQ(t.size(), 2u);
    EXPECT_EQ(t.evictions(), 1u);
    EXPECT_TRUE(t.match(sig({63, 0}), MatchPolicy::BestMatch));
    EXPECT_FALSE(t.match(sig({0, 63}), MatchPolicy::BestMatch))
        << "B was evicted";
}

TEST(SignatureTable, EvictionResetsEntryState)
{
    SignatureTable t(1, 6);
    std::uint32_t a = t.insert(sig({63, 0}), 0.25);
    t.meta(a).phase = 7;
    t.meta(a).minCounter.increment(5);
    t.setThreshold(a, 0.03125);
    t.meta(a).cpi.push(1.5);
    t.meta(a).cpi.push(2.5);

    // Inserting a new signature evicts A and must hand back a
    // factory-fresh slot: transition phase, min counter restarted at
    // the inserting sighting, the *new* threshold, no CPI history.
    std::uint32_t b = t.insert(sig({0, 63}), 0.25);
    EXPECT_EQ(t.evictions(), 1u);
    EXPECT_EQ(t.meta(b).phase, transitionPhaseId);
    EXPECT_EQ(t.meta(b).minCounter.value(), 1u)
        << "the inserting interval is the first sighting";
    EXPECT_DOUBLE_EQ(t.threshold(b), 0.25);
    EXPECT_EQ(t.meta(b).cpi.count(), 0u);
    EXPECT_EQ(t.signatureAt(b), sig({0, 63}));
}

TEST(SignatureTable, LruTickMonotonicAcrossMatchAndInsert)
{
    SignatureTable t(8, 6);
    std::uint32_t a = t.insert(sig({63, 0}), 1.0);
    std::uint32_t b = t.insert(sig({0, 63}), 1.0);
    EXPECT_LT(t.meta(a).lastUse, t.meta(b).lastUse)
        << "later insert is more recently used";
    std::uint64_t b_use = t.meta(b).lastUse;

    // match() must not advance LRU state by itself...
    t.match(sig({63, 0}), MatchPolicy::BestMatch);
    EXPECT_EQ(t.meta(b).lastUse, b_use);

    // ...but touch() after a match moves the entry ahead of every
    // prior use, and a subsequent insert is newer still.
    t.touch(a);
    EXPECT_GT(t.meta(a).lastUse, b_use);
    std::uint32_t c = t.insert(sig({32, 32}), 1.0);
    EXPECT_GT(t.meta(c).lastUse, t.meta(a).lastUse);
}

TEST(SignatureTable, UnboundedNeverEvicts)
{
    SignatureTable t(0, 6);
    for (int i = 0; i < 100; ++i) {
        std::vector<std::uint8_t> d(16, 0);
        d[i % 16] = static_cast<std::uint8_t>(1 + i / 16);
        t.insert(sig(d), 0.25);
    }
    EXPECT_EQ(t.size(), 100u);
    EXPECT_EQ(t.evictions(), 0u);
}

TEST(SignatureTable, IndexStableWhileUnboundedTableGrows)
{
    // Regression for the pointer-stability hazard: with cap == 0 the
    // old SigEntry* returns were invalidated when the entries vector
    // reallocated. Entry references are indices now; hold one across
    // growth far past the initial capacity and keep using it.
    SignatureTable t(0, 6);
    std::uint32_t held = t.insert(sig({63, 0, 0, 0}), 0.25);
    t.meta(held).phase = 42;
    t.meta(held).cpi.push(1.25);

    for (int i = 0; i < 4096; ++i) {
        std::vector<std::uint8_t> d(4, 0);
        d[i % 4] = static_cast<std::uint8_t>(1 + i % 62);
        d[(i + 1) % 4] = static_cast<std::uint8_t>(1 + (i / 62) % 62);
        t.insert(sig(d), 0.25);
    }
    EXPECT_EQ(t.size(), 4097u);

    // The held reference still designates the original entry.
    EXPECT_EQ(t.meta(held).phase, 42u);
    EXPECT_EQ(t.meta(held).cpi.count(), 1u);
    EXPECT_DOUBLE_EQ(t.meta(held).cpi.mean(), 1.25);
    EXPECT_EQ(t.signatureAt(held), sig({63, 0, 0, 0}));
    EXPECT_EQ(t.weightAt(held), 63u);
    auto m = t.match(sig({63, 0, 0, 0}), MatchPolicy::BestMatch);
    ASSERT_TRUE(m);
    EXPECT_EQ(m.index, held);
}

TEST(SignatureTable, MinCounterWidthFromConstruction)
{
    SignatureTable t(4, 3);
    std::uint32_t e = t.insert(sig({1}), 0.25);
    EXPECT_EQ(t.meta(e).minCounter.max(), 7u);
}

TEST(SignatureTable, InsertCountsTheInsertingSighting)
{
    // Paper section 4.1/4.4: promotion requires the signature to have
    // been *seen* min_count times, and the inserting interval is the
    // first sighting. A fresh entry therefore starts at 1, not 0.
    SignatureTable t(4, 6);
    std::uint32_t e = t.insert(sig({5, 5}), 0.25);
    EXPECT_EQ(t.meta(e).minCounter.value(), 1u);
}

TEST(SignatureTable, ReplaceSignatureTracksDrift)
{
    SignatureTable t(4, 6);
    std::uint32_t e = t.insert(sig({40, 0}), 0.25);
    Signature drifted = sig({44, 2});
    t.replaceSignature(e, drifted.data(), drifted.size(),
                       drifted.weight());
    EXPECT_EQ(t.signatureAt(e), drifted);
    EXPECT_EQ(t.weightAt(e), 46u);
    auto m = t.match(sig({44, 2}), MatchPolicy::BestMatch);
    ASSERT_TRUE(m);
    EXPECT_DOUBLE_EQ(m.distance, 0.0);
}

TEST(SignatureTable, ClearPerformanceStatsKeepsEntries)
{
    SignatureTable t(4, 6);
    std::uint32_t e = t.insert(sig({1, 2}), 0.25);
    t.meta(e).phase = 3;
    t.meta(e).cpi.push(1.5);
    t.clearPerformanceStats();
    EXPECT_EQ(t.size(), 1u);
    auto m = t.match(sig({1, 2}), MatchPolicy::BestMatch);
    ASSERT_TRUE(m);
    EXPECT_EQ(t.meta(m.index).phase, 3u)
        << "phase IDs survive the flush";
    EXPECT_EQ(t.meta(m.index).cpi.count(), 0u) << "CPI stats flushed";
}

TEST(SignatureTable, ClearRemovesEverything)
{
    SignatureTable t(4, 6);
    t.insert(sig({1}), 0.25);
    t.clear();
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.evictions(), 0u);
    // The dimensionality is re-fixed by the next insert.
    t.insert(sig({1, 2, 3}), 0.25);
    EXPECT_TRUE(t.match(sig({1, 2, 3}), MatchPolicy::BestMatch));
}

TEST(SignatureTable, EarlyExitAgreesWithFullScan)
{
    // The running-bound early exit must be invisible: across a mix of
    // weights and thresholds (including exact-boundary distances) the
    // match decisions equal a naive full difference() scan.
    SignatureTable t(0, 6);
    std::vector<Signature> stored;
    for (unsigned i = 0; i < 64; ++i) {
        std::vector<std::uint8_t> d(8, 0);
        for (unsigned j = 0; j < 8; ++j)
            d[j] = static_cast<std::uint8_t>((i * 7 + j * 13) % 64);
        stored.push_back(sig(d));
        t.insert(stored.back(), 0.05 + 0.01 * (i % 23));
    }
    for (unsigned q = 0; q < 64; ++q) {
        std::vector<std::uint8_t> d(8, 0);
        for (unsigned j = 0; j < 8; ++j)
            d[j] = static_cast<std::uint8_t>((q * 11 + j * 5) % 64);
        Signature query = sig(d);

        // Naive reference: first index under threshold, and best
        // index by strictly-smaller distance.
        int ref_first = -1, ref_best = -1;
        double best_diff = 0.0;
        for (unsigned i = 0; i < 64; ++i) {
            double diff = query.difference(stored[i]);
            if (diff >= t.threshold(i))
                continue;
            if (ref_first < 0)
                ref_first = static_cast<int>(i);
            if (ref_best < 0 || diff < best_diff) {
                ref_best = static_cast<int>(i);
                best_diff = diff;
            }
        }

        auto first = t.match(query, MatchPolicy::FirstMatch);
        auto best = t.match(query, MatchPolicy::BestMatch);
        EXPECT_EQ(first ? static_cast<int>(first.index) : -1,
                  ref_first)
            << "query " << q;
        EXPECT_EQ(best ? static_cast<int>(best.index) : -1, ref_best)
            << "query " << q;
        if (best && ref_best >= 0) {
            EXPECT_DOUBLE_EQ(best.distance, best_diff)
                << "query " << q;
        }
    }
}

// ---- Soft-error model: per-row ECC, quarantine, repair ----

TEST(SignatureTableEcc, SingleFlipCorrectedInPlace)
{
    SignatureTable t(32, 6);
    std::uint32_t e = t.insert(sig({40, 20, 10, 5}), 0.25);
    t.flipSignatureBit(e, 10);
    EXPECT_TRUE(t.checkParityAt(e))
        << "a single-event flip is correctable, not a quarantine";
    EXPECT_EQ(t.eccCorrections(), 1u);
    EXPECT_FALSE(t.quarantinedAt(e));
    EXPECT_EQ(t.signatureAt(e), sig({40, 20, 10, 5}))
        << "the flipped bit was not restored";
    auto m = t.match(sig({40, 20, 10, 5}), MatchPolicy::BestMatch);
    ASSERT_TRUE(m);
    EXPECT_DOUBLE_EQ(m.distance, 0.0);
}

TEST(SignatureTableEcc, EveryBitPositionIsCorrectable)
{
    for (unsigned bit = 0; bit < 4 * 8; ++bit) {
        SignatureTable t(32, 6);
        std::uint32_t e = t.insert(sig({40, 20, 10, 5}), 0.25);
        t.flipSignatureBit(e, bit);
        EXPECT_TRUE(t.checkParityAt(e)) << "bit " << bit;
        EXPECT_EQ(t.signatureAt(e), sig({40, 20, 10, 5}))
            << "bit " << bit;
    }
}

TEST(SignatureTableEcc, MultiBitDamageQuarantines)
{
    SignatureTable t(32, 6);
    std::uint32_t e = t.insert(sig({40, 20}), 0.25);
    t.flipSignatureBit(e, 1);
    t.flipSignatureBit(e, 11);
    EXPECT_FALSE(t.checkParityAt(e));
    EXPECT_TRUE(t.quarantinedAt(e));
    EXPECT_EQ(t.numQuarantined(), 1u);
    EXPECT_EQ(t.eccCorrections(), 0u);
    // Quarantined entries are invisible to the clean match path...
    EXPECT_FALSE(t.match(sig({40, 20}), MatchPolicy::BestMatch));
    // ...but the syndrome-corrected quarantine matcher recovers the
    // true distance (0 for the original query) from the damaged row.
    Signature q = sig({40, 20});
    auto m = t.matchQuarantined(q.data(), q.size(), q.weight(), 0.0);
    ASSERT_TRUE(m);
    EXPECT_EQ(m.index, e);
    EXPECT_DOUBLE_EQ(m.distance, 0.0);
}

TEST(SignatureTableEcc, RepairKeepsMetadataAndLiftsQuarantine)
{
    SignatureTable t(32, 6);
    std::uint32_t e = t.insert(sig({40, 20}), 0.125);
    t.meta(e).phase = 5;
    t.meta(e).minCounter.increment(3);
    t.meta(e).cpi.push(1.5);
    t.flipSignatureBit(e, 0);
    t.flipSignatureBit(e, 9);
    ASSERT_FALSE(t.checkParityAt(e));

    Signature fresh = sig({41, 21});
    t.repairEntry(e, fresh.data(), fresh.size(), fresh.weight());
    EXPECT_FALSE(t.quarantinedAt(e));
    EXPECT_EQ(t.numQuarantined(), 0u);
    // The narrow metadata is ECC-protected: only the wide signature
    // bytes were lost to the fault.
    EXPECT_EQ(t.meta(e).phase, 5u);
    EXPECT_EQ(t.meta(e).minCounter.value(), 4u);
    EXPECT_EQ(t.meta(e).cpi.count(), 1u);
    EXPECT_DOUBLE_EQ(t.threshold(e), 0.125);
    EXPECT_EQ(t.signatureAt(e), fresh);
    EXPECT_TRUE(t.checkParityAt(e)) << "repair left stale check bits";
    EXPECT_TRUE(t.match(fresh, MatchPolicy::BestMatch));
}

TEST(SignatureTableEcc, ScrubCorrectsSinglesAndQuarantinesWider)
{
    SignatureTable t(32, 6);
    std::uint32_t a = t.insert(sig({10, 10}), 0.25);
    std::uint32_t b = t.insert(sig({20, 20}), 0.25);
    std::uint32_t c = t.insert(sig({30, 30}), 0.25);
    t.flipSignatureBit(a, 3);
    t.flipSignatureBit(b, 2);
    t.flipSignatureBit(b, 12);
    EXPECT_EQ(t.scrubParity(), 1u) << "only the double-flip entry "
                                      "should be newly quarantined";
    EXPECT_EQ(t.eccCorrections(), 1u);
    EXPECT_FALSE(t.quarantinedAt(a));
    EXPECT_TRUE(t.quarantinedAt(b));
    EXPECT_FALSE(t.quarantinedAt(c));
    EXPECT_EQ(t.signatureAt(a), sig({10, 10}));
    // A second scrub finds nothing new.
    EXPECT_EQ(t.scrubParity(), 0u);
}

TEST(SignatureTableEcc, ReplaceSignatureRefreshesCheckBits)
{
    // Signature creep rewrites the row every matched interval; the
    // check bits must follow or the next scrub would false-positive.
    SignatureTable t(4, 6);
    std::uint32_t e = t.insert(sig({40, 0}), 0.25);
    Signature drifted = sig({44, 2});
    t.replaceSignature(e, drifted.data(), drifted.size(),
                       drifted.weight());
    EXPECT_TRUE(t.checkParityAt(e));
    EXPECT_EQ(t.eccCorrections(), 0u);
}

TEST(SignatureTableEcc, EvictionIsQuarantineBlind)
{
    // Eviction must be pure LRU: preferring quarantined victims would
    // desynchronize table contents (and all later phase-ID
    // allocations) from a fault-free run of the same stream.
    SignatureTable t(2, 6);
    std::uint32_t a = t.insert(sig({63, 0}), 0.25);
    std::uint32_t b = t.insert(sig({0, 63}), 0.25);
    t.flipSignatureBit(b, 0);
    t.flipSignatureBit(b, 9);
    ASSERT_FALSE(t.checkParityAt(b));
    std::uint32_t c = t.insert(sig({32, 32}), 0.25);
    EXPECT_EQ(c, a) << "the LRU entry is the victim even though the "
                       "MRU one is quarantined";
    EXPECT_TRUE(t.quarantinedAt(b));
    EXPECT_EQ(t.numQuarantined(), 1u);
}

TEST(SignatureTableEcc, EvictingQuarantinedVictimClearsFlag)
{
    SignatureTable t(1, 6);
    std::uint32_t a = t.insert(sig({63, 0}), 0.25);
    t.flipSignatureBit(a, 0);
    t.flipSignatureBit(a, 9);
    ASSERT_FALSE(t.checkParityAt(a));
    ASSERT_EQ(t.numQuarantined(), 1u);

    std::uint32_t b = t.insert(sig({0, 63}), 0.25);
    EXPECT_EQ(b, a) << "the quarantined LRU slot is recycled";
    EXPECT_FALSE(t.quarantinedAt(b));
    EXPECT_EQ(t.numQuarantined(), 0u);
    EXPECT_TRUE(t.checkParityAt(b))
        << "recycled slot carries fresh check bits";
    EXPECT_EQ(t.match(sig({0, 63}), MatchPolicy::BestMatch).index, b);
}

TEST(SignatureTableEcc, StateRoundTripPreservesEccAndQuarantine)
{
    SignatureTable t(8, 6);
    std::uint32_t a = t.insert(sig({40, 20}), 0.25);
    std::uint32_t b = t.insert(sig({5, 50}), 0.25);
    t.meta(b).phase = 3;
    t.flipSignatureBit(a, 1);
    t.flipSignatureBit(a, 11);
    ASSERT_FALSE(t.checkParityAt(a));
    t.flipSignatureBit(b, 4);
    ASSERT_TRUE(t.checkParityAt(b));

    StateWriter w;
    t.saveState(w);
    SignatureTable u(8, 6);
    StateReader r(w.buffer());
    u.loadState(r);
    EXPECT_TRUE(r.atEnd());
    EXPECT_EQ(u.size(), 2u);
    EXPECT_TRUE(u.quarantinedAt(a));
    EXPECT_EQ(u.numQuarantined(), 1u);
    EXPECT_EQ(u.eccCorrections(), 1u);
    EXPECT_EQ(u.meta(b).phase, 3u);
    EXPECT_EQ(u.signatureAt(b), sig({5, 50}));
    // The quarantined entry's damaged bytes and syndrome survive the
    // round trip: the quarantine matcher still recovers it.
    Signature q = sig({40, 20});
    auto m = u.matchQuarantined(q.data(), q.size(), q.weight(), 0.0);
    ASSERT_TRUE(m);
    EXPECT_EQ(m.index, a);

    // A snapshot for different table geometry is refused.
    SignatureTable v(4, 6);
    StateReader r2(w.buffer());
    EXPECT_THROW(v.loadState(r2), Error);
}
