/**
 * @file
 * Unit tests for the Past Signature Table: threshold matching,
 * best-vs-first match policies, LRU replacement and per-entry state.
 */

#include <gtest/gtest.h>

#include "phase/signature_table.hh"

using namespace tpcp;
using namespace tpcp::phase;

namespace
{

Signature
sig(std::vector<std::uint8_t> dims)
{
    return Signature(std::move(dims), 6);
}

} // namespace

TEST(SignatureTable, EmptyNoMatch)
{
    SignatureTable t(32, 6);
    EXPECT_EQ(t.match(sig({1, 2, 3}), MatchPolicy::BestMatch),
              nullptr);
    EXPECT_EQ(t.size(), 0u);
}

TEST(SignatureTable, InsertThenExactMatch)
{
    SignatureTable t(32, 6);
    t.insert(sig({10, 20, 30}), 0.25);
    SigEntry *e = t.match(sig({10, 20, 30}), MatchPolicy::BestMatch);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(t.size(), 1u);
}

TEST(SignatureTable, ThresholdIsExclusive)
{
    SignatureTable t(32, 6);
    // weight 40 + 40; a distance of 20 -> difference 0.25 exactly.
    t.insert(sig({40, 0}), 0.25);
    EXPECT_EQ(t.match(sig({20, 20}), MatchPolicy::BestMatch),
              nullptr)
        << "difference must be strictly below the threshold";
    // distance 10 -> difference 10/75 ~ 0.133 < 0.25: matches.
    EXPECT_NE(t.match(sig({35, 0}), MatchPolicy::BestMatch),
              nullptr);
}

TEST(SignatureTable, BestMatchPicksClosest)
{
    SignatureTable t(32, 6);
    SigEntry &far = t.insert(sig({30, 10}), 1.0);
    far.phase = 1;
    SigEntry &near = t.insert(sig({22, 18}), 1.0);
    near.phase = 2;
    SigEntry *best = t.match(sig({20, 20}), MatchPolicy::BestMatch);
    ASSERT_NE(best, nullptr);
    EXPECT_EQ(best->phase, 2u);
}

TEST(SignatureTable, FirstMatchPicksFirstInTableOrder)
{
    SignatureTable t(32, 6);
    SigEntry &first = t.insert(sig({30, 10}), 1.0);
    first.phase = 1;
    SigEntry &closer = t.insert(sig({22, 18}), 1.0);
    closer.phase = 2;
    SigEntry *got = t.match(sig({20, 20}), MatchPolicy::FirstMatch);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->phase, 1u)
        << "prior work [25] takes the first satisfying entry";
}

TEST(SignatureTable, PerEntryThresholdRespected)
{
    SignatureTable t(32, 6);
    SigEntry &tight = t.insert(sig({40, 0}), 0.05);
    tight.phase = 1;
    // Difference ~0.07 fails the tightened 5% threshold.
    EXPECT_EQ(t.match(sig({37, 3}), MatchPolicy::BestMatch),
              nullptr);
    tight.threshold = 0.25;
    EXPECT_NE(t.match(sig({37, 3}), MatchPolicy::BestMatch),
              nullptr);
}

TEST(SignatureTable, LruEvictionAtCapacity)
{
    SignatureTable t(2, 6);
    SigEntry &a = t.insert(sig({63, 0}), 0.25);
    a.phase = 1;
    SigEntry &b = t.insert(sig({0, 63}), 0.25);
    b.phase = 2;
    // Touch A so B is LRU; inserting C evicts B.
    t.touch(*t.match(sig({63, 0}), MatchPolicy::BestMatch));
    t.insert(sig({32, 32}), 0.25);
    EXPECT_EQ(t.size(), 2u);
    EXPECT_EQ(t.evictions(), 1u);
    EXPECT_NE(t.match(sig({63, 0}), MatchPolicy::BestMatch),
              nullptr);
    EXPECT_EQ(t.match(sig({0, 63}), MatchPolicy::BestMatch),
              nullptr)
        << "B was evicted";
}

TEST(SignatureTable, UnboundedNeverEvicts)
{
    SignatureTable t(0, 6);
    for (int i = 0; i < 100; ++i) {
        std::vector<std::uint8_t> d(16, 0);
        d[i % 16] = static_cast<std::uint8_t>(1 + i / 16);
        t.insert(sig(d), 0.25);
    }
    EXPECT_EQ(t.size(), 100u);
    EXPECT_EQ(t.evictions(), 0u);
}

TEST(SignatureTable, MinCounterWidthFromConstruction)
{
    SignatureTable t(4, 3);
    SigEntry &e = t.insert(sig({1}), 0.25);
    EXPECT_EQ(e.minCounter.max(), 7u);
}

TEST(SignatureTable, ClearPerformanceStatsKeepsEntries)
{
    SignatureTable t(4, 6);
    SigEntry &e = t.insert(sig({1, 2}), 0.25);
    e.phase = 3;
    e.cpi.push(1.5);
    t.clearPerformanceStats();
    EXPECT_EQ(t.size(), 1u);
    SigEntry *m = t.match(sig({1, 2}), MatchPolicy::BestMatch);
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->phase, 3u) << "phase IDs survive the flush";
    EXPECT_EQ(m->cpi.count(), 0u) << "CPI stats flushed";
}

TEST(SignatureTable, ClearRemovesEverything)
{
    SignatureTable t(4, 6);
    t.insert(sig({1}), 0.25);
    t.clear();
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.evictions(), 0u);
}
