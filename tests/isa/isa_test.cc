/**
 * @file
 * Unit tests for the synthetic ISA: op-class traits, instruction
 * predicates, PC arithmetic and program validation.
 */

#include <gtest/gtest.h>

#include "isa/inst.hh"
#include "isa/op_class.hh"
#include "isa/program.hh"

using namespace tpcp;
using namespace tpcp::isa;

TEST(OpClass, TraitsPredicates)
{
    EXPECT_TRUE(opTraits(OpClass::Load).isMem);
    EXPECT_TRUE(opTraits(OpClass::Load).isLoad);
    EXPECT_TRUE(opTraits(OpClass::Store).isMem);
    EXPECT_FALSE(opTraits(OpClass::Store).isLoad);
    EXPECT_TRUE(opTraits(OpClass::Branch).isControl);
    EXPECT_TRUE(opTraits(OpClass::Branch).isConditional);
    EXPECT_TRUE(opTraits(OpClass::Jump).isControl);
    EXPECT_FALSE(opTraits(OpClass::Jump).isConditional);
    EXPECT_FALSE(opTraits(OpClass::IntAlu).isMem);
    EXPECT_FALSE(opTraits(OpClass::IntAlu).isControl);
}

TEST(OpClass, LatenciesSensible)
{
    EXPECT_EQ(opTraits(OpClass::IntAlu).latency, 1u);
    EXPECT_GT(opTraits(OpClass::IntDiv).latency,
              opTraits(OpClass::IntMult).latency);
    EXPECT_GT(opTraits(OpClass::FpDiv).latency,
              opTraits(OpClass::FpMult).latency);
}

TEST(OpClass, FunctionalUnits)
{
    EXPECT_EQ(opTraits(OpClass::Load).fu, FuClass::LoadStore);
    EXPECT_EQ(opTraits(OpClass::Store).fu, FuClass::LoadStore);
    EXPECT_EQ(opTraits(OpClass::FpAdd).fu, FuClass::FpAdd);
    EXPECT_EQ(opTraits(OpClass::IntDiv).fu, FuClass::IntMultDiv);
    EXPECT_EQ(opTraits(OpClass::FpDiv).fu, FuClass::FpMultDiv);
    EXPECT_EQ(opTraits(OpClass::Nop).fu, FuClass::None);
}

TEST(OpClass, RegisterWriters)
{
    EXPECT_TRUE(opTraits(OpClass::Load).writesReg);
    EXPECT_FALSE(opTraits(OpClass::Store).writesReg);
    EXPECT_FALSE(opTraits(OpClass::Branch).writesReg);
    EXPECT_TRUE(opTraits(OpClass::IntAlu).writesReg);
}

TEST(BasicBlock, PcArithmetic)
{
    BasicBlock bb;
    bb.baseAddr = 0x1000;
    bb.insts.resize(3);
    EXPECT_EQ(bb.pc(0), 0x1000u);
    EXPECT_EQ(bb.pc(1), 0x1004u);
    EXPECT_EQ(bb.pc(2), 0x1008u);
    EXPECT_EQ(bb.size(), 3u);
}

TEST(Inst, ToStringMentionsOperands)
{
    Inst inst;
    inst.op = OpClass::Load;
    inst.dest = 3;
    inst.src1 = 5;
    inst.stream = 1;
    std::string s = inst.toString();
    EXPECT_NE(s.find("load"), std::string::npos);
    EXPECT_NE(s.find("r3"), std::string::npos);
    EXPECT_NE(s.find("stream 1"), std::string::npos);
}

namespace
{

/** Builds a minimal valid one-region two-block program. */
Program
tinyProgram()
{
    Program p;
    p.name = "tiny";

    Region r;
    r.name = "r0";
    r.firstBlock = 0;
    r.numBlocks = 2;
    r.entryBlock = 0;
    r.memStreams.push_back({});
    BranchBehaviorDesc loop;
    loop.kind = BranchBehaviorDesc::Kind::LoopBack;
    loop.tripCount = 4;
    r.branchBehaviors.push_back(loop);
    p.regions.push_back(r);

    BasicBlock b0;
    b0.baseAddr = 0x1000;
    Inst alu;
    alu.op = OpClass::IntAlu;
    alu.dest = 1;
    b0.insts.push_back(alu);
    Inst load;
    load.op = OpClass::Load;
    load.dest = 2;
    load.stream = 0;
    b0.insts.push_back(load);
    b0.fallthrough = 1;
    p.blocks.push_back(b0);

    BasicBlock b1;
    b1.baseAddr = 0x2000;
    Inst br;
    br.op = OpClass::Branch;
    br.behavior = 0;
    br.targetBlock = 0;
    b1.insts.push_back(br);
    b1.fallthrough = 0;
    p.blocks.push_back(b1);
    return p;
}

} // namespace

TEST(Program, ValidProgramPasses)
{
    EXPECT_EQ(tinyProgram().validate(), "");
}

TEST(Program, StaticInstCount)
{
    EXPECT_EQ(tinyProgram().staticInstCount(), 3u);
}

TEST(Program, EmptyProgramInvalid)
{
    Program p;
    EXPECT_NE(p.validate(), "");
}

TEST(Program, BadMemStreamRejected)
{
    Program p = tinyProgram();
    p.blocks[0].insts[1].stream = 7; // out of range
    EXPECT_NE(p.validate(), "");
}

TEST(Program, BadBranchBehaviorRejected)
{
    Program p = tinyProgram();
    p.blocks[1].insts[0].behavior = 9;
    EXPECT_NE(p.validate(), "");
}

TEST(Program, BranchTargetOutsideRegionRejected)
{
    Program p = tinyProgram();
    p.blocks[1].insts[0].targetBlock = 5;
    EXPECT_NE(p.validate(), "");
}

TEST(Program, ControlMidBlockRejected)
{
    Program p = tinyProgram();
    Inst br;
    br.op = OpClass::Branch;
    br.behavior = 0;
    br.targetBlock = 0;
    p.blocks[0].insts.insert(p.blocks[0].insts.begin(), br);
    EXPECT_NE(p.validate(), "");
}

TEST(Program, OverlappingBlocksRejected)
{
    Program p = tinyProgram();
    p.blocks[1].baseAddr = p.blocks[0].baseAddr + 4; // overlaps b0
    EXPECT_NE(p.validate(), "");
}

TEST(Program, EmptyBlockRejected)
{
    Program p = tinyProgram();
    p.blocks[0].insts.clear();
    EXPECT_NE(p.validate(), "");
}

TEST(Program, EntryOutsideRegionRejected)
{
    Program p = tinyProgram();
    p.regions[0].entryBlock = 5;
    EXPECT_NE(p.validate(), "");
}
