/**
 * @file
 * End-to-end tests of the resilience harness on a synthetic two-phase
 * profile: zero-rate runs agree perfectly, reports are deterministic,
 * the parity+scrub mitigation holds phase-ID agreement under
 * signature faults, and a checkpointed + resumed campaign produces a
 * report byte-identical to an uninterrupted one.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/status.hh"
#include "fault/resilience.hh"
#include "trace/interval_profile.hh"

using namespace tpcp;
using namespace tpcp::fault;

namespace
{

std::string
tmpPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

/** A 200-interval profile alternating between two clearly separated
 * phases in blocks of 10 intervals. */
trace::IntervalProfile
syntheticProfile(std::size_t n = 200)
{
    trace::IntervalProfile p("test/synth", "ooo", 1000, {16});
    for (std::size_t i = 0; i < n; ++i) {
        int phase = static_cast<int>((i / 10) % 2);
        trace::IntervalRecord rec;
        rec.cpi = 1.0 + phase;
        rec.insts = 1000;
        rec.accumTotal = 10000;
        std::vector<std::uint32_t> accums(16, 0);
        for (int j = 0; j < 4; ++j)
            accums[phase * 8 + j] = 2500;
        rec.accums.push_back(std::move(accums));
        p.push(std::move(rec));
    }
    return p;
}

ResilienceOptions
baseOptions()
{
    ResilienceOptions opts;
    opts.dims = 16;
    opts.injector.seed = 42;
    return opts;
}

} // namespace

TEST(Resilience, ZeroRateRunAgreesPerfectly)
{
    trace::IntervalProfile p = syntheticProfile();
    ResilienceOptions opts = baseOptions();
    ResilienceReport r = runResilience(p, opts);
    EXPECT_EQ(r.intervals, 200u);
    EXPECT_EQ(r.faults.total(), 0u);
    EXPECT_DOUBLE_EQ(r.agreement(), 1.0);
    EXPECT_DOUBLE_EQ(r.nextPhaseDelta(), 0.0);
    EXPECT_EQ(r.repairs, 0u);
    EXPECT_EQ(r.quarantines, 0u);
    EXPECT_EQ(r.eccCorrections, 0u);
}

TEST(Resilience, ReportIsDeterministic)
{
    trace::IntervalProfile p = syntheticProfile();
    ResilienceOptions opts = baseOptions();
    opts.injector.target = Target::All;
    opts.injector.ratePerInterval = 0.2;
    ResilienceReport a = runResilience(p, opts);
    ResilienceReport b = runResilience(p, opts);
    EXPECT_EQ(toJson(a), toJson(b));
    EXPECT_GT(a.faults.total(), 0u);
}

TEST(Resilience, MitigationHoldsAgreementUnderSignatureFaults)
{
    trace::IntervalProfile p = syntheticProfile();
    ResilienceOptions opts = baseOptions();
    opts.injector.target = Target::SignatureRows;
    opts.injector.ratePerInterval = 0.2;

    ResilienceReport unmit = runResilience(p, opts);
    opts.injector.mitigated = true;
    opts.scrubEvery = 1;
    ResilienceReport mit = runResilience(p, opts);

    ASSERT_GT(mit.faults.signatureFlips, 0u);
    EXPECT_GE(mit.agreement(), 0.99)
        << "parity+scrub failed to hold the phase-ID stream";
    EXPECT_GE(mit.agreement(), unmit.agreement());
    // With per-interval scrubbing every single-event flip is caught
    // and corrected in place before the next match.
    EXPECT_GT(mit.eccCorrections, 0u);
}

TEST(Resilience, CheckpointResumeReportIsByteIdentical)
{
    const std::string ckpt = tmpPath("resilience.ckpt");
    trace::IntervalProfile p = syntheticProfile();
    ResilienceOptions opts = baseOptions();
    opts.injector.target = Target::All;
    opts.injector.ratePerInterval = 0.3;
    opts.injector.mitigated = true;

    ResilienceReport full = runResilience(p, opts);

    ResilienceOptions stop = opts;
    stop.checkpointPath = ckpt;
    stop.checkpointAt = 97;
    ResilienceReport partial = runResilience(p, stop);
    EXPECT_TRUE(partial.checkpointed);
    EXPECT_EQ(partial.intervals, 97u);

    ResilienceOptions resume = opts;
    resume.checkpointPath = ckpt;
    resume.resume = true;
    ResilienceReport resumed = runResilience(p, resume);
    EXPECT_FALSE(resumed.checkpointed);
    EXPECT_EQ(toJson(resumed), toJson(full))
        << "a resumed campaign must not drift from the uninterrupted "
           "run";
    std::remove(ckpt.c_str());
}

TEST(Resilience, ResumeUnderDifferentOptionsRaises)
{
    const std::string ckpt = tmpPath("resilience_mismatch.ckpt");
    trace::IntervalProfile p = syntheticProfile();
    ResilienceOptions opts = baseOptions();
    opts.injector.target = Target::All;
    opts.injector.ratePerInterval = 0.3;
    opts.checkpointPath = ckpt;
    opts.checkpointAt = 50;
    ASSERT_TRUE(runResilience(p, opts).checkpointed);

    // Resuming a checkpoint taken at a different fault rate would
    // silently change the campaign; it must be refused.
    ResilienceOptions resume = baseOptions();
    resume.injector.target = Target::All;
    resume.injector.ratePerInterval = 0.25;
    resume.checkpointPath = ckpt;
    resume.resume = true;
    EXPECT_THROW(runResilience(p, resume), Error);
    std::remove(ckpt.c_str());
}

TEST(Resilience, ResumeWithoutCheckpointPathRaises)
{
    trace::IntervalProfile p = syntheticProfile();
    ResilienceOptions opts = baseOptions();
    opts.resume = true;
    EXPECT_THROW(runResilience(p, opts), Error);
}

TEST(Resilience, MissingDimensionConfigRaises)
{
    trace::IntervalProfile p = syntheticProfile();
    ResilienceOptions opts = baseOptions();
    opts.dims = 32; // profile was recorded at 16 counters only
    EXPECT_THROW(runResilience(p, opts), Error);
}

TEST(Resilience, CorruptCheckpointRejectedOnResume)
{
    const std::string ckpt = tmpPath("resilience_corrupt.ckpt");
    trace::IntervalProfile p = syntheticProfile();
    ResilienceOptions opts = baseOptions();
    opts.injector.target = Target::All;
    opts.injector.ratePerInterval = 0.3;
    opts.checkpointPath = ckpt;
    opts.checkpointAt = 50;
    ASSERT_TRUE(runResilience(p, opts).checkpointed);

    // Flip one byte in the middle of the file.
    std::FILE *f = std::fopen(ckpt.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 0, SEEK_END), 0);
    long size = std::ftell(f);
    ASSERT_GT(size, 0);
    ASSERT_EQ(std::fseek(f, size / 2, SEEK_SET), 0);
    int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, size / 2, SEEK_SET), 0);
    std::fputc(c ^ 0x01, f);
    std::fclose(f);

    ResilienceOptions resume = opts;
    resume.checkpointAt = 0;
    resume.resume = true;
    EXPECT_THROW(runResilience(p, resume), Error);
    std::remove(ckpt.c_str());
}
