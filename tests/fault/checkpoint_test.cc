/**
 * @file
 * Tests for the tracker checkpoint serializer: a resumed tracker
 * continues bit-identically to the original, and — the property the
 * envelope guarantees — a snapshot with any single corrupted byte is
 * rejected by the checksum instead of silently restoring garbage.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/status.hh"
#include "fault/checkpoint.hh"
#include "pred/phase_tracker.hh"

using namespace tpcp;
using namespace tpcp::fault;

namespace
{

std::string
tmpPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

std::vector<std::uint32_t>
rawFor(int phase)
{
    std::vector<std::uint32_t> raw(16, 0);
    for (int i = 0; i < 4; ++i)
        raw[(phase * 4 + i) % 16] = 2500;
    return raw;
}

/** Feeds intervals [from, to) of a deterministic two-phase stream. */
void
feed(pred::PhaseTracker &t, int from, int to,
     std::vector<PhaseId> *phases = nullptr)
{
    for (int i = from; i < to; ++i) {
        int phase = (i / 10) % 2;
        pred::PhaseTrackerOutput out =
            t.onIntervalRaw(rawFor(phase), 10000, 1.0 + phase);
        if (phases)
            phases->push_back(out.classification.phase);
    }
}

std::vector<std::uint8_t>
readFileBytes(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::vector<std::uint8_t> bytes;
    int c;
    while ((c = std::fgetc(f)) != EOF)
        bytes.push_back(static_cast<std::uint8_t>(c));
    std::fclose(f);
    return bytes;
}

void
writeFileBytes(const std::string &path,
               const std::vector<std::uint8_t> &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
              bytes.size());
    std::fclose(f);
}

} // namespace

TEST(TrackerCheckpoint, ResumedTrackerContinuesIdentically)
{
    const std::string path = tmpPath("tracker.ckpt");
    pred::PhaseTracker a;
    feed(a, 0, 60);
    ASSERT_TRUE(saveTracker(path, a));

    pred::PhaseTracker b;
    loadTracker(path, b);
    EXPECT_EQ(b.intervals(), a.intervals());

    // Continue both for another 60 intervals: classifications and
    // predictions must stay in lockstep interval by interval.
    for (int i = 60; i < 120; ++i) {
        int phase = (i / 10) % 2;
        pred::PhaseTrackerOutput oa =
            a.onIntervalRaw(rawFor(phase), 10000, 1.0 + phase);
        pred::PhaseTrackerOutput ob =
            b.onIntervalRaw(rawFor(phase), 10000, 1.0 + phase);
        EXPECT_EQ(oa.classification.phase, ob.classification.phase)
            << "interval " << i;
        EXPECT_EQ(oa.nextPhase.phase, ob.nextPhase.phase)
            << "interval " << i;
        EXPECT_EQ(oa.phaseChanged, ob.phaseChanged) << "interval "
                                                    << i;
    }
    std::remove(path.c_str());
}

TEST(TrackerCheckpoint, ResumeMatchesUninterruptedRun)
{
    const std::string path = tmpPath("tracker_split.ckpt");
    std::vector<PhaseId> uninterrupted;
    {
        pred::PhaseTracker t;
        feed(t, 0, 120, &uninterrupted);
    }

    std::vector<PhaseId> split;
    {
        pred::PhaseTracker t;
        feed(t, 0, 47, &split);
        ASSERT_TRUE(saveTracker(path, t));
    }
    {
        pred::PhaseTracker t;
        loadTracker(path, t);
        feed(t, 47, 120, &split);
    }
    EXPECT_EQ(split, uninterrupted);
    std::remove(path.c_str());
}

TEST(TrackerCheckpoint, AnySingleCorruptByteRejected)
{
    const std::string path = tmpPath("tracker_corrupt.ckpt");
    pred::PhaseTracker t;
    feed(t, 0, 30);
    ASSERT_TRUE(saveTracker(path, t));

    const std::vector<std::uint8_t> clean = readFileBytes(path);
    ASSERT_GT(clean.size(), 20u);
    for (std::size_t i = 0; i < clean.size(); ++i) {
        std::vector<std::uint8_t> bad = clean;
        bad[i] = static_cast<std::uint8_t>(bad[i] ^ 0x01);
        writeFileBytes(path, bad);
        pred::PhaseTracker fresh;
        EXPECT_THROW(loadTracker(path, fresh), Error)
            << "flipped byte " << i << " of " << clean.size()
            << " not detected";
    }
    std::remove(path.c_str());
}

TEST(TrackerCheckpoint, TruncationAndMissingFileRejected)
{
    const std::string path = tmpPath("tracker_trunc.ckpt");
    pred::PhaseTracker t;
    feed(t, 0, 30);
    ASSERT_TRUE(saveTracker(path, t));
    std::vector<std::uint8_t> bytes = readFileBytes(path);
    bytes.resize(bytes.size() / 2);
    writeFileBytes(path, bytes);
    pred::PhaseTracker fresh;
    EXPECT_THROW(loadTracker(path, fresh), Error);
    std::remove(path.c_str());
    EXPECT_THROW(loadTracker(path, fresh), Error);
}
