/**
 * @file
 * Unit tests for the fault injector: per-stream determinism, the
 * mitigated plausibility gate on input stats, ECC absorption of
 * narrow-structure faults, and checkpoint save/load of the RNG
 * position so a resumed campaign replays the identical fault tail.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/state_io.hh"
#include "common/status.hh"
#include "fault/injector.hh"
#include "pred/phase_tracker.hh"

using namespace tpcp;
using namespace tpcp::fault;

namespace
{

/** Accumulator snapshot of a synthetic phase: the interval's branch
 * weight concentrated in four counters picked by the phase number. */
std::vector<std::uint32_t>
rawFor(int phase)
{
    std::vector<std::uint32_t> raw(16, 0);
    for (int i = 0; i < 4; ++i)
        raw[(phase * 4 + i) % 16] = 2500;
    return raw;
}

/** A tracker whose signature table holds a few live entries, so
 * signature/metadata faults have somewhere to land. */
pred::PhaseTracker
warmedTracker()
{
    pred::PhaseTracker t;
    for (int i = 0; i < 40; ++i) {
        int phase = (i / 10) % 3;
        t.onIntervalRaw(rawFor(phase), 10000, 1.0 + 0.1 * phase);
    }
    return t;
}

bool
sameCpi(double a, double b)
{
    return a == b || (std::isnan(a) && std::isnan(b));
}

} // namespace

TEST(Injector, TargetNamesRoundTrip)
{
    for (const std::string &name : targetNames())
        EXPECT_EQ(targetName(targetByName(name)), name);
    EXPECT_THROW(targetByName("bogus"), Error);
}

TEST(Injector, SameStreamSameFaults)
{
    InjectorConfig cfg;
    cfg.target = Target::All;
    cfg.ratePerInterval = 0.5;
    cfg.seed = 123;
    pred::PhaseTracker t1 = warmedTracker();
    pred::PhaseTracker t2 = warmedTracker();
    Injector i1(cfg, "wl/a");
    Injector i2(cfg, "wl/a");
    for (int k = 0; k < 50; ++k) {
        std::vector<std::uint32_t> r1 = rawFor(k % 3);
        std::vector<std::uint32_t> r2 = rawFor(k % 3);
        double c1 = 1.25, c2 = 1.25;
        i1.beforeInterval(t1, r1, c1);
        i2.beforeInterval(t2, r2, c2);
        EXPECT_EQ(r1, r2) << "interval " << k;
        EXPECT_TRUE(sameCpi(c1, c2)) << "interval " << k;
        t1.onIntervalRaw(r1, 10000, c1);
        t2.onIntervalRaw(r2, 10000, c2);
    }
    EXPECT_GT(i1.counts().total(), 0u);
    EXPECT_EQ(i1.counts().total(), i2.counts().total());
}

TEST(Injector, DifferentStreamsDiverge)
{
    InjectorConfig cfg;
    cfg.target = Target::InputStats;
    cfg.ratePerInterval = 0.5;
    pred::PhaseTracker t1, t2;
    Injector i1(cfg, "wl/a");
    Injector i2(cfg, "wl/b");
    bool diverged = false;
    for (int k = 0; k < 256 && !diverged; ++k) {
        std::vector<std::uint32_t> r1(16, 100), r2(16, 100);
        double c1 = 1.0, c2 = 1.0;
        i1.beforeInterval(t1, r1, c1);
        i2.beforeInterval(t2, r2, c2);
        // A corrupted CPI never compares equal to the clean 1.0.
        diverged = (c1 == 1.0) != (c2 == 1.0);
    }
    EXPECT_TRUE(diverged)
        << "distinct workload streams drew identical fault patterns";
}

TEST(Injector, MitigatedInputGateRejectsEveryCorruptionMode)
{
    // All three corruption modes of a clean 1.0 CPI (NaN, negation,
    // x1024+1 garbage) fail the [0, 100] plausibility gate, so the
    // mitigated injector always hands the classifier a NaN it
    // structurally rejects — never silently-wrong feedback.
    InjectorConfig cfg;
    cfg.target = Target::InputStats;
    cfg.ratePerInterval = 1.0;
    cfg.mitigated = true;
    pred::PhaseTracker t;
    Injector inj(cfg, "wl/gate");
    for (int k = 0; k < 64; ++k) {
        std::vector<std::uint32_t> raw(16, 100);
        double cpi = 1.0;
        inj.beforeInterval(t, raw, cpi);
        EXPECT_TRUE(std::isnan(cpi)) << "interval " << k;
    }
    EXPECT_EQ(inj.counts().inputFaults, 64u);
}

TEST(Injector, UnmitigatedInputFaultsPassGarbageThrough)
{
    InjectorConfig cfg;
    cfg.target = Target::InputStats;
    cfg.ratePerInterval = 1.0;
    pred::PhaseTracker t;
    Injector inj(cfg, "wl/raw");
    bool sawGarbage = false;
    for (int k = 0; k < 64; ++k) {
        std::vector<std::uint32_t> raw(16, 100);
        double cpi = 1.0;
        inj.beforeInterval(t, raw, cpi);
        EXPECT_TRUE(std::isnan(cpi) || cpi == -1.0 || cpi == 1025.0)
            << "unexpected corruption value " << cpi;
        sawGarbage |= cpi == 1025.0;
    }
    EXPECT_TRUE(sawGarbage)
        << "the finite-garbage mode never fired in 64 draws";
}

TEST(Injector, MitigatedAccumFaultsAreAbsorbed)
{
    // The narrow accumulator file is modelled as fully ECC-corrected
    // under mitigation: the fault is counted but the snapshot the
    // classifier sees is untouched.
    InjectorConfig cfg;
    cfg.target = Target::AccumCounters;
    cfg.ratePerInterval = 1.0;
    cfg.mitigated = true;
    pred::PhaseTracker t;
    Injector inj(cfg, "wl/accum");
    for (int k = 0; k < 32; ++k) {
        std::vector<std::uint32_t> raw = rawFor(k % 3);
        const std::vector<std::uint32_t> clean = raw;
        double cpi = 1.0;
        inj.beforeInterval(t, raw, cpi);
        EXPECT_EQ(raw, clean) << "interval " << k;
        EXPECT_DOUBLE_EQ(cpi, 1.0);
    }
    EXPECT_EQ(inj.counts().accumFlips, 32u);
}

TEST(Injector, UnmitigatedAccumFaultsLandInTheSnapshot)
{
    InjectorConfig cfg;
    cfg.target = Target::AccumCounters;
    cfg.ratePerInterval = 1.0;
    pred::PhaseTracker t;
    Injector inj(cfg, "wl/accum-raw");
    bool mutated = false;
    for (int k = 0; k < 32; ++k) {
        std::vector<std::uint32_t> raw = rawFor(k % 3);
        const std::vector<std::uint32_t> clean = raw;
        double cpi = 1.0;
        inj.beforeInterval(t, raw, cpi);
        mutated |= raw != clean;
        for (std::uint32_t v : raw)
            EXPECT_LE(v, (1u << 24) - 1)
                << "flip escaped the physical counter width";
    }
    EXPECT_TRUE(mutated);
}

TEST(Injector, StateRoundTripResumesIdenticalStream)
{
    InjectorConfig cfg;
    cfg.target = Target::InputStats;
    cfg.ratePerInterval = 0.5;
    pred::PhaseTracker t1, t2;
    Injector a(cfg, "wl/resume");
    for (int k = 0; k < 32; ++k) {
        std::vector<std::uint32_t> raw(16, 100);
        double cpi = 1.0;
        a.beforeInterval(t1, raw, cpi);
    }

    StateWriter w;
    a.saveState(w);
    Injector b(cfg, "wl/resume");
    StateReader r(w.buffer());
    b.loadState(r);
    EXPECT_TRUE(r.atEnd());
    EXPECT_EQ(b.counts().inputFaults, a.counts().inputFaults);

    // Both injectors now sit at the same RNG position: the fault
    // tails must be bit-identical.
    for (int k = 0; k < 64; ++k) {
        std::vector<std::uint32_t> ra(16, 100), rb(16, 100);
        double ca = 1.0, cb = 1.0;
        a.beforeInterval(t1, ra, ca);
        b.beforeInterval(t2, rb, cb);
        EXPECT_TRUE(sameCpi(ca, cb)) << "interval " << k;
    }
    EXPECT_EQ(a.counts().inputFaults, b.counts().inputFaults);
}
