/**
 * @file
 * Integration tests: the full pipeline (program -> simulator ->
 * profiler -> classifier -> predictors -> metrics) on small
 * hand-scripted multi-region programs with known phase structure.
 */

#include <gtest/gtest.h>

#include "analysis/cov.hh"
#include "analysis/experiment.hh"
#include "analysis/run_lengths.hh"
#include "pred/eval.hh"
#include "trace/interval_profiler.hh"
#include "uarch/ooo_core.hh"
#include "uarch/simple_core.hh"
#include "uarch/simulator.hh"
#include "workload/phase_script.hh"
#include "workload/program_builder.hh"

using namespace tpcp;

namespace
{

constexpr InstCount kInterval = 20'000;

/** Three visibly different regions: ALU-bound, memory-bound, FP. */
isa::Program
threeRegionProgram(std::uint32_t *regions_out)
{
    workload::ProgramBuilder pb(99);

    workload::RegionParams alu;
    alu.name = "alu";
    alu.numBlocks = 8;
    alu.avgBlockInsts = 12;
    alu.loadFrac = 0.1;
    alu.storeFrac = 0.05;
    alu.workingSetBytes = 8 * 1024;
    alu.bernoulliFrac = 0.0;
    alu.ilp = 6;
    regions_out[0] = pb.addRegion(alu);

    workload::RegionParams mem;
    mem.name = "mem";
    mem.numBlocks = 10;
    mem.avgBlockInsts = 10;
    mem.loadFrac = 0.35;
    mem.storeFrac = 0.1;
    mem.workingSetBytes = 2 * 1024 * 1024;
    mem.randomAccessFrac = 0.8;
    mem.numStreams = 4;
    regions_out[1] = pb.addRegion(mem);

    workload::RegionParams fp;
    fp.name = "fp";
    fp.numBlocks = 6;
    fp.avgBlockInsts = 14;
    fp.fpFrac = 0.5;
    fp.loadFrac = 0.15;
    fp.workingSetBytes = 16 * 1024;
    fp.bernoulliFrac = 0.0;
    fp.ilp = 2;
    regions_out[2] = pb.addRegion(fp);

    return pb.build("three");
}

/** Profiles @p program under @p script on the fast core. */
trace::IntervalProfile
profileScript(const isa::Program &program,
              const workload::ScriptPtr &script,
              std::uint64_t seed = 7)
{
    Rng rng(seed);
    workload::ExpandedSchedule sched(
        workload::expandScript(script, rng));
    uarch::SimpleCore core(uarch::MachineConfig::table1());
    uarch::Simulator sim(program, sched, core, seed);
    trace::IntervalProfiler profiler(core, "e2e", kInterval,
                                     {8, 16});
    sim.addSink(&profiler);
    sim.run();
    return profiler.takeProfile();
}

/** Periodic A/B/C script: @p dwell intervals per region. */
workload::ScriptPtr
periodicScript(const std::uint32_t *r, double dwell, unsigned reps)
{
    using namespace workload;
    InstCount insts =
        static_cast<InstCount>(dwell * kInterval);
    return scriptLoop(scriptSeq({scriptRun(r[0], insts, 0.0),
                                 scriptRun(r[1], insts, 0.0),
                                 scriptRun(r[2], insts, 0.0)}),
                      reps);
}

phase::ClassifierConfig
config(double threshold = 0.25, unsigned min_count = 0)
{
    phase::ClassifierConfig cfg;
    cfg.numCounters = 16;
    cfg.tableEntries = 32;
    cfg.similarityThreshold = threshold;
    cfg.minCountThreshold = min_count;
    return cfg;
}

} // namespace

TEST(EndToEnd, ThreeRegionsThreePhases)
{
    std::uint32_t r[3];
    isa::Program p = threeRegionProgram(r);
    trace::IntervalProfile prof =
        profileScript(p, periodicScript(r, 10, 8));
    ASSERT_GE(prof.numIntervals(), 200u);

    analysis::ClassificationResult res =
        analysis::classifyProfile(prof, config());
    EXPECT_GE(res.numPhases, 3u);
    EXPECT_LE(res.numPhases, 6u)
        << "three code regions, three-ish phases";
}

TEST(EndToEnd, ClassificationCutsCovDramatically)
{
    std::uint32_t r[3];
    isa::Program p = threeRegionProgram(r);
    trace::IntervalProfile prof =
        profileScript(p, periodicScript(r, 10, 8));
    analysis::ClassificationResult res =
        analysis::classifyProfile(prof, config());
    EXPECT_GT(res.wholeProgramCov, 0.3)
        << "regions must differ in CPI";
    EXPECT_LT(res.covCpi, res.wholeProgramCov / 3.0)
        << "per-phase CoV far below whole-program CoV (paper 4.3)";
}

TEST(EndToEnd, SamePhaseIdRecursAcrossPeriods)
{
    std::uint32_t r[3];
    isa::Program p = threeRegionProgram(r);
    trace::IntervalProfile prof =
        profileScript(p, periodicScript(r, 10, 8));
    analysis::ClassificationResult res =
        analysis::classifyProfile(prof, config());
    // The phase ID at the middle of period 2's A-dwell equals the
    // one in period 5's A-dwell.
    const auto &ids = res.trace.phases;
    ASSERT_GT(ids.size(), 150u);
    EXPECT_EQ(ids[35], ids[35 + 30 * 3])
        << "phases recur with the same ID";
}

TEST(EndToEnd, TransitionPhaseMarksBoundaries)
{
    std::uint32_t r[3];
    isa::Program p = threeRegionProgram(r);
    trace::IntervalProfile prof =
        profileScript(p, periodicScript(r, 10, 8));
    analysis::ClassificationResult strict = analysis::classifyProfile(
        prof, config(0.25, 8));
    // Some intervals (first sightings + straddling intervals) are
    // transition; but far from all.
    EXPECT_GT(strict.transitionFraction, 0.0);
    EXPECT_LT(strict.transitionFraction, 0.4);
}

TEST(EndToEnd, MinCountReducesPhaseCount)
{
    std::uint32_t r[3];
    isa::Program p = threeRegionProgram(r);
    // Jittered dwells create straddling intervals -> one-off
    // signatures that the transition phase absorbs.
    using namespace workload;
    auto script = scriptLoop(
        scriptSeq({scriptRun(r[0], 8 * kInterval, 0.3),
                   scriptRun(r[1], 5 * kInterval, 0.3),
                   scriptRun(r[2], 6 * kInterval, 0.3)}),
        12);
    trace::IntervalProfile prof = profileScript(p, script);
    auto no_min = analysis::classifyProfile(prof, config(0.25, 0));
    auto with_min = analysis::classifyProfile(prof, config(0.25, 8));
    EXPECT_LE(with_min.numPhases, no_min.numPhases)
        << "the transition phase absorbs one-off signatures";
}

TEST(EndToEnd, StableRunsMatchScriptDwell)
{
    std::uint32_t r[3];
    isa::Program p = threeRegionProgram(r);
    trace::IntervalProfile prof =
        profileScript(p, periodicScript(r, 10, 8));
    analysis::ClassificationResult res =
        analysis::classifyProfile(prof, config());
    EXPECT_NEAR(res.runLengths.stableAvg, 10.0, 3.0)
        << "average stable run tracks the scripted dwell";
}

TEST(EndToEnd, PeriodicPhasesAreRlePredictable)
{
    std::uint32_t r[3];
    isa::Program p = threeRegionProgram(r);
    trace::IntervalProfile prof =
        profileScript(p, periodicScript(r, 10, 8));
    analysis::ClassificationResult res =
        analysis::classifyProfile(prof, config());

    pred::NextPhaseStats lv =
        pred::evalNextPhase(res.trace.phases, std::nullopt);
    pred::NextPhaseStats rle = pred::evalNextPhase(
        res.trace.phases, pred::ChangePredictorConfig::rle(2));
    EXPECT_GT(lv.accuracy(), 0.8) << "long stable runs";
    EXPECT_GE(rle.accuracy(), lv.accuracy())
        << "RLE must not hurt on a periodic trace";
}

TEST(EndToEnd, ChangeOutcomesLearnable)
{
    std::uint32_t r[3];
    isa::Program p = threeRegionProgram(r);
    trace::IntervalProfile prof =
        profileScript(p, periodicScript(r, 10, 10));
    analysis::ClassificationResult res =
        analysis::classifyProfile(prof, config());
    pred::ChangeOutcomeStats ch = pred::evalChangeOutcome(
        res.trace.phases, pred::ChangePredictorConfig::markov(1));
    EXPECT_GT(ch.correctRate(), 0.5)
        << "A->B->C->A changes are first-order predictable";
    pred::PerfectMarkovStats perfect =
        pred::evalPerfectMarkov(res.trace.phases, 1);
    EXPECT_GE(perfect.coverage() + 1e-9, ch.correctRate());
}

TEST(EndToEnd, AdaptiveThresholdSplitsDriftingPhase)
{
    // Drift between the ALU and MEM regions: at 25% with signature
    // creep this tends to stay one phase with huge CPI variance; the
    // adaptive classifier splits it.
    std::uint32_t r[3];
    isa::Program p = threeRegionProgram(r);
    using namespace workload;
    auto script =
        scriptLoop(scriptSeq({scriptDrift(r[0], r[1],
                                          60 * kInterval, 4'000,
                                          0.05, 0.95),
                              scriptRun(r[2], 10 * kInterval, 0.1)}),
                   6);
    trace::IntervalProfile prof = profileScript(p, script);

    phase::ClassifierConfig stat = config(0.25, 0);
    phase::ClassifierConfig dyn = stat;
    dyn.adaptiveThreshold = true;
    dyn.cpiDeviationThreshold = 0.25;
    auto static_res = analysis::classifyProfile(prof, stat);
    auto dyn_res = analysis::classifyProfile(prof, dyn);
    EXPECT_LT(dyn_res.covCpi, static_res.covCpi)
        << "performance feedback must improve homogeneity";
    EXPECT_GT(dyn_res.classifierStats.thresholdHalvings, 0u);
}

TEST(EndToEnd, OooAndSimpleCoresAgreeOnStructure)
{
    // The two cores yield different absolute CPI but the same phase
    // structure (classification depends only on code signatures).
    std::uint32_t r[3];
    isa::Program p = threeRegionProgram(r);
    auto script = periodicScript(r, 10, 5);

    Rng rng1(7), rng2(7);
    workload::ExpandedSchedule sched1(
        workload::expandScript(script, rng1));
    workload::ExpandedSchedule sched2(
        workload::expandScript(script, rng2));

    uarch::SimpleCore simple(uarch::MachineConfig::table1());
    uarch::OooCore ooo(uarch::MachineConfig::table1());

    uarch::Simulator sim1(p, sched1, simple, 7);
    trace::IntervalProfiler prof1(simple, "s", kInterval, {16});
    sim1.addSink(&prof1);
    sim1.run();

    uarch::Simulator sim2(p, sched2, ooo, 7);
    trace::IntervalProfiler prof2(ooo, "o", kInterval, {16});
    sim2.addSink(&prof2);
    sim2.run();

    auto res1 =
        analysis::classifyProfile(prof1.profile(), config());
    auto res2 =
        analysis::classifyProfile(prof2.profile(), config());
    EXPECT_EQ(res1.numPhases, res2.numPhases)
        << "same code stream => same phase structure on both cores";
}
