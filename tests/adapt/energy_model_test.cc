/**
 * @file
 * Unit tests for the energy proxy: the two accounting identities
 * (monotonicity in every access count, zero-activity == leakage
 * only) plus the size/associativity scaling of per-access energy
 * and the static-power ordering of stepped-down machines.
 */

#include <gtest/gtest.h>

#include "adapt/energy_model.hh"
#include "uarch/machine_config.hh"

using namespace tpcp;
using namespace tpcp::adapt;

namespace
{

uarch::AccessCounts
someActivity()
{
    uarch::AccessCounts counts;
    counts.cycles = 10'000;
    counts.insts = 8'000;
    counts.icacheAccesses = 2'000;
    counts.dcacheAccesses = 3'600;
    counts.l2Accesses = 240;
    counts.itlbAccesses = 2'800;
    counts.dtlbAccesses = 2'800;
    return counts;
}

} // namespace

TEST(EnergyModel, ZeroActivityReducesToStaticTimesCycles)
{
    EnergyModel model;
    uarch::MachineConfig m = uarch::MachineConfig::table1();
    uarch::AccessCounts counts;
    counts.cycles = 12'345;
    EXPECT_DOUBLE_EQ(model.energy(m, counts),
                     model.staticPower(m) * 12'345.0);
}

TEST(EnergyModel, ZeroCyclesAndActivityIsZeroEnergy)
{
    EnergyModel model;
    uarch::MachineConfig m = uarch::MachineConfig::table1();
    EXPECT_DOUBLE_EQ(model.energy(m, uarch::AccessCounts{}), 0.0);
}

TEST(EnergyModel, EnergyIsMonotoneInEveryAccessCount)
{
    EnergyModel model;
    uarch::MachineConfig m = uarch::MachineConfig::table1();
    uarch::AccessCounts base = someActivity();
    double e0 = model.energy(m, base);

    auto bumped = [&](auto field) {
        uarch::AccessCounts c = base;
        c.*field += 1'000;
        return model.energy(m, c);
    };
    EXPECT_GT(bumped(&uarch::AccessCounts::icacheAccesses), e0);
    EXPECT_GT(bumped(&uarch::AccessCounts::dcacheAccesses), e0);
    EXPECT_GT(bumped(&uarch::AccessCounts::l2Accesses), e0);
    EXPECT_GT(bumped(&uarch::AccessCounts::itlbAccesses), e0);
    EXPECT_GT(bumped(&uarch::AccessCounts::dtlbAccesses), e0);
    EXPECT_GT(bumped(&uarch::AccessCounts::insts), e0);
    EXPECT_GT(bumped(&uarch::AccessCounts::cycles), e0);
}

TEST(EnergyModel, CacheAccessEnergyGrowsWithSizeAndAssoc)
{
    EnergyModel model;
    uarch::CacheConfig ref;
    ref.sizeBytes = 16 * 1024;
    ref.assoc = 4;
    EXPECT_DOUBLE_EQ(model.cacheAccessEnergy(ref),
                     model.weights().cacheDynPerAccess);

    uarch::CacheConfig big = ref;
    big.sizeBytes *= 4;
    EXPECT_NEAR(model.cacheAccessEnergy(big),
                2.0 * model.cacheAccessEnergy(ref), 1e-12);

    uarch::CacheConfig wide = ref;
    wide.assoc *= 4;
    EXPECT_NEAR(model.cacheAccessEnergy(wide),
                2.0 * model.cacheAccessEnergy(ref), 1e-12);
}

TEST(EnergyModel, SteppedDownMachineLeaksLess)
{
    EnergyModel model;
    uarch::MachineConfig big = uarch::MachineConfig::table1();

    uarch::MachineConfig small_cache = big;
    small_cache.dcache = uarch::halvedCache(big.dcache);
    EXPECT_LT(model.staticPower(small_cache),
              model.staticPower(big));

    uarch::MachineConfig narrow = big;
    narrow.core = uarch::narrowedCore(big.core);
    EXPECT_LT(model.staticPower(narrow), model.staticPower(big));
}

TEST(EnergyModel, IntervalEnergyMatchesEstimatedAccessCounts)
{
    EnergyModel model;
    uarch::MachineConfig m = uarch::MachineConfig::table1();
    uarch::AccessCounts est = model.estimateAccesses(100'000,
                                                     150'000);
    EXPECT_EQ(est.insts, 100'000u);
    EXPECT_EQ(est.cycles, 150'000u);
    EXPECT_DOUBLE_EQ(model.intervalEnergy(m, 100'000, 150'000),
                     model.energy(m, est));
}
