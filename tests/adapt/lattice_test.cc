/**
 * @file
 * Unit tests for the configuration lattice: enumeration order, the
 * big-index convention, stepped machine geometry, unique names, and
 * the neighbor move set.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "common/status.hh"
#include "adapt/lattice.hh"
#include "uarch/machine_config.hh"

using namespace tpcp;
using namespace tpcp::adapt;

TEST(ConfigLattice, BigIndexIsTheBaseMachine)
{
    uarch::MachineConfig base = uarch::MachineConfig::table1();
    ConfigLattice lattice = ConfigLattice::standard(base);
    EXPECT_EQ(uarch::configHash(
                  lattice.machine(ConfigLattice::bigIndex)),
              uarch::configHash(base));
    for (std::size_t d = 0; d < lattice.numDims(); ++d)
        EXPECT_EQ(lattice.level(ConfigLattice::bigIndex, d), 0u);
}

TEST(ConfigLattice, StandardHasTwelvePointsSmallHasFour)
{
    EXPECT_EQ(ConfigLattice::standard().size(), 12u);
    EXPECT_EQ(ConfigLattice::small().size(), 4u);
}

TEST(ConfigLattice, EveryPointHasAUniqueNameAndMachine)
{
    ConfigLattice lattice = ConfigLattice::standard();
    std::set<std::string> names;
    std::set<std::uint64_t> hashes;
    for (std::size_t i = 0; i < lattice.size(); ++i) {
        names.insert(lattice.name(i));
        hashes.insert(uarch::configHash(lattice.machine(i)));
    }
    EXPECT_EQ(names.size(), lattice.size());
    EXPECT_EQ(hashes.size(), lattice.size());
}

TEST(ConfigLattice, LevelsStepTheAdvertisedStructures)
{
    ConfigLattice lattice = ConfigLattice::standard();
    const uarch::MachineConfig &big =
        lattice.machine(ConfigLattice::bigIndex);
    for (std::size_t i = 0; i < lattice.size(); ++i) {
        const uarch::MachineConfig &m = lattice.machine(i);
        EXPECT_EQ(m.dcache.sizeBytes,
                  big.dcache.sizeBytes >> lattice.level(i, 0));
        EXPECT_EQ(m.l2.sizeBytes,
                  big.l2.sizeBytes >> lattice.level(i, 1));
        EXPECT_EQ(m.core.issueWidth,
                  big.core.issueWidth >> lattice.level(i, 2));
        // Untouched dimensions stay at the base geometry.
        EXPECT_EQ(m.icache.sizeBytes, big.icache.sizeBytes);
    }
}

TEST(ConfigLattice, NeighborsDifferInExactlyOneDimensionByOne)
{
    ConfigLattice lattice = ConfigLattice::standard();
    for (std::size_t i = 0; i < lattice.size(); ++i) {
        for (std::size_t n : lattice.neighbors(i)) {
            ASSERT_LT(n, lattice.size());
            unsigned diffs = 0;
            for (std::size_t d = 0; d < lattice.numDims(); ++d) {
                int delta = static_cast<int>(lattice.level(n, d)) -
                            static_cast<int>(lattice.level(i, d));
                if (delta != 0) {
                    ++diffs;
                    EXPECT_EQ(std::abs(delta), 1);
                }
            }
            EXPECT_EQ(diffs, 1u);
        }
    }
}

TEST(ConfigLattice, NeighborRelationIsSymmetric)
{
    ConfigLattice lattice = ConfigLattice::standard();
    for (std::size_t i = 0; i < lattice.size(); ++i) {
        for (std::size_t n : lattice.neighbors(i)) {
            std::vector<std::size_t> back = lattice.neighbors(n);
            EXPECT_NE(std::find(back.begin(), back.end(), i),
                      back.end())
                << "neighbor edge " << i << " -> " << n
                << " has no reverse edge";
        }
    }
}

TEST(ConfigLattice, ByNameResolvesPresets)
{
    EXPECT_EQ(ConfigLattice::byName("standard").size(), 12u);
    EXPECT_EQ(ConfigLattice::byName("small").size(), 4u);
    EXPECT_THROW((void)ConfigLattice::byName("nosuch"),
                 tpcp::Error);
}

TEST(ConfigLattice, CornerPointNamesEncodeTheGeometry)
{
    ConfigLattice lattice = ConfigLattice::standard();
    EXPECT_EQ(lattice.name(ConfigLattice::bigIndex),
              "l1d16k-l2128k-w4");
    EXPECT_EQ(lattice.name(lattice.size() - 1), "l1d4k-l264k-w2");
}
