/**
 * @file
 * Unit tests for the greedy hill-climb policy: convergence to a
 * planted best configuration, the revisit budget, cross-sample
 * (stale-config) learning, hysteresis, and transition-phase
 * pinning.
 */

#include <gtest/gtest.h>

#include "adapt/policy.hh"

using namespace tpcp;
using namespace tpcp::adapt;

namespace
{

/**
 * Drives the policy through @p n intervals of @p phase, always
 * running whatever the policy chooses, with planted per-config
 * interval EDP (cycles = 1, energy = edp[cfg]).
 */
void
drive(GreedyHillClimbPolicy &policy, PhaseId phase,
      const std::vector<double> &edp, std::size_t n)
{
    for (std::size_t t = 0; t < n; ++t) {
        std::size_t cfg = policy.choose(phase);
        policy.record(phase, cfg, 1.0, edp.at(cfg));
    }
}

} // namespace

TEST(GreedyHillClimbPolicy, StartsAtTheBigConfiguration)
{
    ConfigLattice lattice = ConfigLattice::small();
    GreedyHillClimbPolicy policy(lattice);
    EXPECT_EQ(policy.choose(7), ConfigLattice::bigIndex);
    EXPECT_EQ(policy.bestChoice(7), ConfigLattice::bigIndex);
}

TEST(GreedyHillClimbPolicy, ConvergesToThePlantedBestConfig)
{
    ConfigLattice lattice = ConfigLattice::small();
    GreedyHillClimbPolicy policy(lattice);
    // Config 3 (smallest) is clearly best for phase 1.
    std::vector<double> edp = {10.0, 8.0, 7.0, 4.0};
    drive(policy, 1, edp, 40);
    EXPECT_TRUE(policy.settled(1));
    EXPECT_EQ(policy.bestChoice(1), 3u);
    EXPECT_EQ(policy.choose(1), 3u);
}

TEST(GreedyHillClimbPolicy, StaysBigWhenBigIsBest)
{
    ConfigLattice lattice = ConfigLattice::small();
    GreedyHillClimbPolicy policy(lattice);
    std::vector<double> edp = {1.0, 5.0, 5.0, 5.0};
    drive(policy, 1, edp, 40);
    EXPECT_TRUE(policy.settled(1));
    EXPECT_EQ(policy.bestChoice(1), ConfigLattice::bigIndex);
}

TEST(GreedyHillClimbPolicy, PhasesLearnIndependently)
{
    ConfigLattice lattice = ConfigLattice::small();
    GreedyHillClimbPolicy policy(lattice);
    std::vector<double> phase1 = {1.0, 5.0, 5.0, 5.0};
    std::vector<double> phase2 = {10.0, 8.0, 7.0, 4.0};
    for (std::size_t round = 0; round < 20; ++round) {
        drive(policy, 1, phase1, 2);
        drive(policy, 2, phase2, 2);
    }
    EXPECT_EQ(policy.bestChoice(1), ConfigLattice::bigIndex);
    EXPECT_EQ(policy.bestChoice(2), 3u);
}

TEST(GreedyHillClimbPolicy, RevisitBudgetBoundsExploration)
{
    ConfigLattice lattice = ConfigLattice::standard();
    PolicyConfig cfg;
    cfg.revisitBudget = 2;
    GreedyHillClimbPolicy policy(lattice, cfg);
    // Strictly decreasing EDP with the index keeps the climb going
    // until the budget cuts it off.
    std::vector<double> edp(lattice.size());
    for (std::size_t i = 0; i < edp.size(); ++i)
        edp[i] = 100.0 - static_cast<double>(i);
    drive(policy, 1, edp, 100);
    EXPECT_TRUE(policy.settled(1));
    // Big plus at most two charged candidate evaluations.
    std::size_t best = policy.bestChoice(1);
    EXPECT_NE(best, lattice.size() - 1)
        << "a budget of 2 cannot have reached the far corner";
}

TEST(GreedyHillClimbPolicy, CrossSamplesAreFreeEvaluations)
{
    ConfigLattice lattice = ConfigLattice::small();
    PolicyConfig cfg;
    cfg.sampleIntervals = 2;
    GreedyHillClimbPolicy policy(lattice, cfg);
    // Feed stale-config measurements of config 3 before exploration
    // ever reaches it: the policy should absorb them and, once its
    // queue gets there, adopt 3 without spending intervals on it.
    policy.record(1, 3, 1.0, 1.0);
    policy.record(1, 3, 1.0, 1.0);
    std::vector<double> edp = {10.0, 9.0, 8.0, 1.0};
    drive(policy, 1, edp, 30);
    EXPECT_EQ(policy.bestChoice(1), 3u);
}

TEST(GreedyHillClimbPolicy, HysteresisKeepsNearTiedIncumbent)
{
    ConfigLattice lattice = ConfigLattice::small();
    PolicyConfig cfg;
    cfg.switchMargin = 0.10;
    GreedyHillClimbPolicy policy(lattice, cfg);
    // Config 1 is 5% better than big - inside the 10% margin, so
    // the incumbent (big, measured first) must survive.
    std::vector<double> edp = {1.00, 0.95, 1.50, 1.50};
    drive(policy, 1, edp, 40);
    EXPECT_EQ(policy.bestChoice(1), ConfigLattice::bigIndex);
}

TEST(GreedyHillClimbPolicy, ContinuingSamplesDemoteABadIncumbent)
{
    ConfigLattice lattice = ConfigLattice::small();
    GreedyHillClimbPolicy policy(lattice);
    // During exploration config 3 looks great...
    std::vector<double> good = {10.0, 9.5, 9.5, 1.0};
    drive(policy, 1, good, 20);
    ASSERT_EQ(policy.bestChoice(1), 3u);
    // ...but the phase's steady state is terrible on it. The
    // cumulative mean climbs past the others and the policy walks
    // away from its earlier verdict.
    std::vector<double> bad = {10.0, 9.5, 9.5, 100.0};
    drive(policy, 1, bad, 200);
    EXPECT_NE(policy.choose(1), 3u);
}

TEST(GreedyHillClimbPolicy, TransitionPhasePinnedBigWhenConfigured)
{
    ConfigLattice lattice = ConfigLattice::small();
    PolicyConfig cfg;
    cfg.bigOnTransition = true;
    GreedyHillClimbPolicy policy(lattice, cfg);
    std::vector<double> edp = {10.0, 1.0, 1.0, 1.0};
    drive(policy, transitionPhaseId, edp, 40);
    EXPECT_EQ(policy.choose(transitionPhaseId),
              ConfigLattice::bigIndex);
    EXPECT_EQ(policy.bestChoice(transitionPhaseId),
              ConfigLattice::bigIndex);
}

TEST(GreedyHillClimbPolicy, TransitionPhaseLearnsWhenUnpinned)
{
    ConfigLattice lattice = ConfigLattice::small();
    GreedyHillClimbPolicy policy(lattice); // bigOnTransition = false
    std::vector<double> edp = {10.0, 9.0, 8.0, 1.0};
    drive(policy, transitionPhaseId, edp, 40);
    EXPECT_EQ(policy.bestChoice(transitionPhaseId), 3u);
}

TEST(GreedyHillClimbPolicy, InvalidPhaseAlwaysRunsBig)
{
    ConfigLattice lattice = ConfigLattice::small();
    GreedyHillClimbPolicy policy(lattice);
    EXPECT_EQ(policy.choose(invalidPhaseId),
              ConfigLattice::bigIndex);
}
