/**
 * @file
 * Unit tests for the reconfiguration cost model: zero switches accrue
 * zero penalty, an unpredicted (reactive) switch costs strictly more
 * than a predicted one, and the per-kind stats add up.
 */

#include <gtest/gtest.h>

#include <string>

#include "adapt/penalty.hh"

using namespace tpcp;
using namespace tpcp::adapt;

TEST(ReconfigPenalty, NoSwitchesMeansZeroPenalty)
{
    ReconfigPenalty penalty;
    EXPECT_EQ(penalty.stats().total(), 0u);
    EXPECT_EQ(penalty.stats().penaltyCycles, 0u);
}

TEST(ReconfigPenalty, PredictedCostsLessThanUnpredicted)
{
    ReconfigPenalty penalty;
    EXPECT_LT(penalty.cost(SwitchKind::Predicted),
              penalty.cost(SwitchKind::Reactive));
    EXPECT_EQ(penalty.cost(SwitchKind::Exploration),
              penalty.cost(SwitchKind::Predicted))
        << "policy moves ride the same drain overlap as "
           "anticipated changes";
}

TEST(ReconfigPenalty, ChargeAccumulatesPerKind)
{
    PenaltyConfig cfg;
    cfg.predictedSwitchCycles = 10;
    cfg.unpredictedSwitchCycles = 100;
    ReconfigPenalty penalty(cfg);

    EXPECT_EQ(penalty.charge(SwitchKind::Predicted), 10u);
    EXPECT_EQ(penalty.charge(SwitchKind::Exploration), 10u);
    EXPECT_EQ(penalty.charge(SwitchKind::Reactive), 100u);
    EXPECT_EQ(penalty.charge(SwitchKind::Reactive), 100u);

    const SwitchStats &s = penalty.stats();
    EXPECT_EQ(s.predicted, 1u);
    EXPECT_EQ(s.exploration, 1u);
    EXPECT_EQ(s.reactive, 2u);
    EXPECT_EQ(s.total(), 4u);
    EXPECT_EQ(s.penaltyCycles, 220u);
}

TEST(ReconfigPenalty, KindNamesAreStable)
{
    EXPECT_EQ(std::string(switchKindName(SwitchKind::Predicted)),
              "predicted");
    EXPECT_EQ(std::string(switchKindName(SwitchKind::Exploration)),
              "exploration");
    EXPECT_EQ(std::string(switchKindName(SwitchKind::Reactive)),
              "reactive");
}
