/**
 * @file
 * Unit tests for the adaptation controller and the report scoring:
 * input validation, penalty accounting, determinism, and the
 * baseline orderings (oracle >= static-best >= always-big savings)
 * on planted lattice profiles.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/status.hh"
#include "adapt/controller.hh"
#include "adapt/report.hh"
#include "adapt_test_util.hh"

using namespace tpcp;
using namespace tpcp::adapt;
using adapt_test::Cell;
using adapt_test::makeLatticeProfiles;
using adapt_test::phasesOf;

namespace
{

/** Two phases: phase 1 prefers big, phase 2 prefers small. */
std::vector<Cell>
twoPhaseCells(std::size_t reps)
{
    // On the 4-point small lattice (l1d x width): phase 1 degrades
    // badly on every smaller point; phase 2 is miss-bound and
    // barely slows down.
    std::vector<Cell> cells;
    for (std::size_t r = 0; r < reps; ++r) {
        for (int i = 0; i < 6; ++i)
            cells.push_back({1, {1.0, 1.8, 2.0, 2.6}});
        for (int i = 0; i < 6; ++i)
            cells.push_back({2, {3.0, 3.02, 3.05, 3.08}});
    }
    return cells;
}

} // namespace

TEST(AdaptController, RejectsMismatchedProfileCount)
{
    ConfigLattice lattice = ConfigLattice::small();
    std::vector<Cell> cells = twoPhaseCells(2);
    auto profiles = makeLatticeProfiles(3, cells); // lattice has 4
    AdaptController controller(lattice);
    EXPECT_THROW(controller.run(profiles, phasesOf(cells)),
                 tpcp::Error);
}

TEST(AdaptController, RejectsMismatchedPhaseStream)
{
    ConfigLattice lattice = ConfigLattice::small();
    std::vector<Cell> cells = twoPhaseCells(2);
    auto profiles = makeLatticeProfiles(lattice.size(), cells);
    std::vector<PhaseId> short_phases(cells.size() - 1, 1);
    AdaptController controller(lattice);
    EXPECT_THROW(controller.run(profiles, short_phases),
                 tpcp::Error);
}

TEST(AdaptController, SinglePhaseSingleConfigHasNoSwitches)
{
    // A one-point "lattice" can never switch: totals must be the
    // plain sum over the profile and the penalty must stay zero.
    ConfigLattice lattice(uarch::MachineConfig::table1(),
                          {{StepKind::L1dCache, 1}});
    std::vector<Cell> cells(20, Cell{1, {2.0}});
    auto profiles = makeLatticeProfiles(1, cells);
    AdaptController controller(lattice);
    ControllerResult res =
        controller.run(profiles, phasesOf(cells));

    EXPECT_EQ(res.switches.total(), 0u);
    EXPECT_EQ(res.switches.penaltyCycles, 0u);
    EXPECT_DOUBLE_EQ(res.totals.cycles, 20 * 2.0 * 100'000.0);
    EXPECT_EQ(res.phaseChanges, 0u);
}

TEST(AdaptController, RunsAreDeterministic)
{
    ConfigLattice lattice = ConfigLattice::small();
    std::vector<Cell> cells = twoPhaseCells(8);
    auto profiles = makeLatticeProfiles(lattice.size(), cells);
    AdaptController controller(lattice);
    ControllerResult a = controller.run(profiles, phasesOf(cells));
    ControllerResult b = controller.run(profiles, phasesOf(cells));
    EXPECT_EQ(a.activeConfig, b.activeConfig);
    EXPECT_DOUBLE_EQ(a.totals.edp, b.totals.edp);
    EXPECT_EQ(a.switches.penaltyCycles, b.switches.penaltyCycles);
}

TEST(AdaptController, EverySwitchIsCharged)
{
    ConfigLattice lattice = ConfigLattice::small();
    std::vector<Cell> cells = twoPhaseCells(8);
    auto profiles = makeLatticeProfiles(lattice.size(), cells);
    AdaptController controller(lattice);
    ControllerResult res =
        controller.run(profiles, phasesOf(cells));
    ASSERT_GT(res.switches.total(), 0u);
    PenaltyConfig pc;
    Cycles floor = res.switches.total() *
                   std::min(pc.predictedSwitchCycles,
                            pc.unpredictedSwitchCycles);
    EXPECT_GE(res.switches.penaltyCycles, floor);
    // Config changes in the per-interval record match the stats.
    std::uint64_t observed = 0;
    for (std::size_t t = 1; t < res.activeConfig.size(); ++t) {
        if (res.activeConfig[t] != res.activeConfig[t - 1])
            ++observed;
    }
    EXPECT_EQ(observed, res.switches.total());
}

TEST(AdaptReport, BaselineOrderingOnPlantedProfiles)
{
    ConfigLattice lattice = ConfigLattice::small();
    std::vector<Cell> cells = twoPhaseCells(20);
    auto profiles = makeLatticeProfiles(lattice.size(), cells);
    AdaptReport r = runAdaptation("synthetic",
                                  policyPresetByName("greedy"),
                                  lattice, profiles,
                                  phasesOf(cells));

    // The oracle dominates every other schedule of lattice configs,
    // and a per-phase oracle can never lose to the best single
    // config under the additive interval-EDP objective.
    EXPECT_GE(r.edpSavings(r.oracle) + 1e-12,
              r.edpSavings(r.staticBest));
    EXPECT_GE(r.edpSavings(r.staticBest) + 1e-12, 0.0);
    EXPECT_LE(r.policyTotals.edp, r.alwaysBig.edp * 1.05)
        << "the policy must stay near the always-big baseline on "
           "profiles with an exploitable small-config phase";
    EXPECT_EQ(r.intervals, cells.size());
    EXPECT_EQ(r.numConfigs, lattice.size());
}

TEST(AdaptReport, PolicyApproachesOracleOnStablePhases)
{
    ConfigLattice lattice = ConfigLattice::small();
    // Long, strongly separated phases: the policy should find each
    // phase's planted best and capture most of the oracle saving.
    std::vector<Cell> cells;
    for (int i = 0; i < 120; ++i)
        cells.push_back({1, {1.0, 1.8, 2.0, 2.6}});
    for (int i = 0; i < 120; ++i)
        cells.push_back({2, {3.0, 3.0, 3.0, 3.0}});
    auto profiles = makeLatticeProfiles(lattice.size(), cells);
    AdaptReport r = runAdaptation("synthetic",
                                  policyPresetByName("greedy"),
                                  lattice, profiles,
                                  phasesOf(cells));
    ASSERT_GT(r.edpSavings(r.oracle), 0.0);
    EXPECT_GT(r.oracleFraction(), 0.80);
    // Phase 2 is insensitive to the configuration, so its oracle
    // choice is the leakage-minimal small point.
    for (const PhaseChoice &pc : r.perPhase) {
        if (pc.phase == 2)
            EXPECT_EQ(pc.oracleConfig, lattice.size() - 1);
    }
}

TEST(AdaptReport, JsonCarriesTheHeadlineNumbers)
{
    ConfigLattice lattice = ConfigLattice::small();
    std::vector<Cell> cells = twoPhaseCells(10);
    auto profiles = makeLatticeProfiles(lattice.size(), cells);
    AdaptReport r = runAdaptation("synthetic",
                                  policyPresetByName("greedy"),
                                  lattice, profiles,
                                  phasesOf(cells));
    std::string json = toJson(r);
    EXPECT_NE(json.find("\"workload\": \"synthetic\""),
              std::string::npos);
    EXPECT_NE(json.find("\"policy\": \"greedy\""),
              std::string::npos);
    EXPECT_NE(json.find("\"oracle_fraction\":"), std::string::npos);
    EXPECT_NE(json.find("\"per_phase\": ["), std::string::npos);
    // Serialization is deterministic.
    EXPECT_EQ(json, toJson(r));
}

TEST(AdaptReport, PresetsAreNamedAndValidated)
{
    EXPECT_EQ(policyPresetByName("greedy").name, "greedy");
    PolicyPreset nopred = policyPresetByName("greedy-nopred");
    EXPECT_FALSE(nopred.options.anticipate);
    EXPECT_FALSE(nopred.options.lengthGate);
    PolicyPreset tage = policyPresetByName("greedy-tage");
    EXPECT_NE(tage.options.changePredictor.make(), nullptr);
    EXPECT_EQ(tage.options.changePredictor.make()->name(), "TAGE");
    PolicyPreset perc = policyPresetByName("greedy-perceptron");
    EXPECT_NE(perc.options.changePredictor.make(), nullptr);
    EXPECT_EQ(perc.options.changePredictor.make()->name(),
              "Perceptron");
    EXPECT_THROW((void)policyPresetByName("nosuch"), tpcp::Error);
    EXPECT_EQ(policyPresetNames().size(), 4u);
}
