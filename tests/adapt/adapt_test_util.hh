/**
 * @file
 * Shared synthetic fixtures for the reconfiguration tests: a tiny
 * lattice over Table 1 and per-config interval profiles whose CPIs
 * are planted per (phase, config), so controller and policy behavior
 * can be checked against hand-computed answers.
 */

#ifndef TPCP_TESTS_ADAPT_ADAPT_TEST_UTIL_HH
#define TPCP_TESTS_ADAPT_ADAPT_TEST_UTIL_HH

#include <vector>

#include "adapt/lattice.hh"
#include "common/types.hh"
#include "trace/interval_profile.hh"

namespace tpcp::adapt_test
{

/** One planted interval: its phase and its CPI on every config. */
struct Cell
{
    PhaseId phase;
    /** cpiPerConfig[c] = CPI of this interval on lattice point c. */
    std::vector<double> cpiPerConfig;
};

/**
 * Builds one profile per lattice point from @p cells, all over the
 * same interval grid. Intervals carry 100k instructions, like the
 * real profiles, so the default switch penalties keep their
 * real-run proportions.
 */
inline std::vector<trace::IntervalProfile>
makeLatticeProfiles(std::size_t num_configs,
                    const std::vector<Cell> &cells)
{
    std::vector<trace::IntervalProfile> profiles;
    for (std::size_t c = 0; c < num_configs; ++c) {
        trace::IntervalProfile p("synthetic", "simple", 100'000,
                                 {16});
        for (const Cell &cell : cells) {
            trace::IntervalRecord rec;
            rec.insts = 100'000;
            rec.cpi = cell.cpiPerConfig.at(c);
            rec.accumTotal = 1000;
            rec.accums = {std::vector<std::uint32_t>(16, 0)};
            p.push(std::move(rec));
        }
        profiles.push_back(std::move(p));
    }
    return profiles;
}

/** The phase-ID stream of @p cells. */
inline std::vector<PhaseId>
phasesOf(const std::vector<Cell> &cells)
{
    std::vector<PhaseId> out;
    out.reserve(cells.size());
    for (const Cell &c : cells)
        out.push_back(c.phase);
    return out;
}

/** @p n copies of @p cell. */
inline std::vector<Cell>
repeated(const Cell &cell, std::size_t n)
{
    return std::vector<Cell>(n, cell);
}

} // namespace tpcp::adapt_test

#endif // TPCP_TESTS_ADAPT_ADAPT_TEST_UTIL_HH
