/**
 * @file
 * Unit tests for the offline SimPoint-style k-means classifier.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "analysis/offline_kmeans.hh"
#include "analysis/parallel_runner.hh"
#include "common/rng.hh"

using namespace tpcp;
using namespace tpcp::analysis;

namespace
{

/** Three well-separated 2-D blobs of @p per points each. */
std::vector<std::vector<double>>
threeBlobs(std::size_t per, std::uint64_t seed = 1)
{
    Rng rng(seed);
    std::vector<std::vector<double>> rows;
    const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
    for (int c = 0; c < 3; ++c) {
        for (std::size_t i = 0; i < per; ++i) {
            rows.push_back({centers[c][0] + 0.3 * rng.nextGaussian(),
                            centers[c][1] +
                                0.3 * rng.nextGaussian()});
        }
    }
    return rows;
}

/** A profile with @p n intervals cycling through 3 accumulator
 * shapes. */
trace::IntervalProfile
shapedProfile(std::size_t n)
{
    trace::IntervalProfile p("t", "ooo", 1000, {16});
    Rng rng(std::uint64_t{5});
    for (std::size_t i = 0; i < n; ++i) {
        unsigned shape = (i / 10) % 3;
        trace::IntervalRecord rec;
        rec.insts = 1000;
        rec.cpi = 1.0 + shape;
        std::vector<std::uint32_t> raw(16, 0);
        raw[shape * 5 + 1] = 600 + rng.nextBounded(40);
        raw[shape * 5 + 3] = 300 + rng.nextBounded(30);
        rec.accumTotal = raw[shape * 5 + 1] + raw[shape * 5 + 3];
        rec.accums = {raw};
        p.push(std::move(rec));
    }
    return p;
}

} // namespace

TEST(KMeans, SingleClusterCentroidIsMean)
{
    std::vector<std::vector<double>> rows = {{0, 0}, {2, 0}, {4, 0}};
    KMeansResult r = kMeans(rows, 1, 20, 1);
    ASSERT_EQ(r.centroids.size(), 1u);
    EXPECT_NEAR(r.centroids[0][0], 2.0, 1e-9);
    EXPECT_NEAR(r.centroids[0][1], 0.0, 1e-9);
    EXPECT_NEAR(r.inertia, 8.0, 1e-9);
}

TEST(KMeans, SeparatedBlobsRecovered)
{
    auto rows = threeBlobs(40);
    KMeansResult r = kMeans(rows, 3, 50, 7);
    // Each blob maps to exactly one cluster.
    for (int blob = 0; blob < 3; ++blob) {
        std::set<std::uint32_t> ids;
        for (std::size_t i = 0; i < 40; ++i)
            ids.insert(r.assignments[blob * 40 + i]);
        EXPECT_EQ(ids.size(), 1u) << "blob " << blob << " split";
    }
    // And distinct blobs map to distinct clusters.
    std::set<std::uint32_t> firsts = {r.assignments[0],
                                      r.assignments[40],
                                      r.assignments[80]};
    EXPECT_EQ(firsts.size(), 3u);
}

TEST(KMeans, InertiaDecreasesWithK)
{
    auto rows = threeBlobs(30);
    double prev = std::numeric_limits<double>::max();
    for (unsigned k = 1; k <= 4; ++k) {
        KMeansResult r = kMeans(rows, k, 50, 11);
        EXPECT_LE(r.inertia, prev + 1e-9) << "k=" << k;
        prev = r.inertia;
    }
}

TEST(KMeans, AssignmentsInRange)
{
    auto rows = threeBlobs(20);
    KMeansResult r = kMeans(rows, 5, 30, 3);
    for (auto a : r.assignments)
        EXPECT_LT(a, 5u);
    EXPECT_EQ(r.assignments.size(), rows.size());
}

TEST(KMeans, DeterministicForSeed)
{
    auto rows = threeBlobs(25);
    KMeansResult a = kMeans(rows, 3, 50, 42);
    KMeansResult b = kMeans(rows, 3, 50, 42);
    EXPECT_EQ(a.assignments, b.assignments);
    EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(OfflineClassify, FindsThePlantedPhaseCount)
{
    trace::IntervalProfile profile = shapedProfile(240);
    OfflineConfig cfg;
    cfg.maxK = 10;
    OfflineResult r = classifyOffline(profile, cfg);
    EXPECT_GE(r.k, 3u);
    EXPECT_LE(r.k, 5u)
        << "three planted shapes, modest over-split allowed";
    EXPECT_EQ(r.assignments.size(), profile.numIntervals());
}

TEST(OfflineClassify, AssignmentsGroupLikeShapes)
{
    trace::IntervalProfile profile = shapedProfile(240);
    OfflineResult r = classifyOffline(profile);
    // Intervals 0..9 (shape 0) and 30..39 (shape 0 again) should be
    // in the same cluster.
    EXPECT_EQ(r.assignments[2], r.assignments[32]);
    EXPECT_EQ(r.assignments[12], r.assignments[42]);
    EXPECT_NE(r.assignments[2], r.assignments[12]);
}

TEST(OfflineClassify, SingleShapeGivesFewClusters)
{
    trace::IntervalProfile p("t", "ooo", 1000, {16});
    for (int i = 0; i < 60; ++i) {
        trace::IntervalRecord rec;
        rec.insts = 1000;
        rec.cpi = 1.0;
        std::vector<std::uint32_t> raw(16, 0);
        raw[3] = 1000;
        rec.accumTotal = 1000;
        rec.accums = {raw};
        p.push(std::move(rec));
    }
    OfflineResult r = classifyOffline(p);
    EXPECT_LE(r.k, 2u);
}

TEST(OfflineClassify, DeterministicForFixedSeed)
{
    trace::IntervalProfile profile = shapedProfile(180);
    OfflineConfig cfg;
    cfg.seed = 0xfeedu;
    OfflineResult a = classifyOffline(profile, cfg);
    OfflineResult b = classifyOffline(profile, cfg);
    EXPECT_EQ(a.k, b.k);
    EXPECT_EQ(a.assignments, b.assignments);
    EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
    EXPECT_DOUBLE_EQ(a.score, b.score);
}

TEST(OfflineClassify, BitIdenticalAcrossJobCounts)
{
    // The classification grid must not depend on how it is fanned
    // out: the same cells at --jobs=1 and --jobs=4 must produce
    // byte-identical assignments (the contract every harness's
    // output determinism rests on).
    std::vector<trace::IntervalProfile> profiles;
    for (std::size_t n : {90u, 120u, 150u, 240u})
        profiles.push_back(shapedProfile(n));
    auto classifyAll = [&](unsigned jobs) {
        return runIndexed(profiles.size(), jobs,
                          [&](std::size_t i) {
                              return classifyOffline(profiles[i]);
                          });
    };
    std::vector<OfflineResult> serial = classifyAll(1);
    std::vector<OfflineResult> fanned = classifyAll(4);
    ASSERT_EQ(serial.size(), fanned.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].k, fanned[i].k) << "profile " << i;
        EXPECT_EQ(serial[i].assignments, fanned[i].assignments)
            << "profile " << i;
        EXPECT_DOUBLE_EQ(serial[i].inertia, fanned[i].inertia)
            << "profile " << i;
    }
}

TEST(NormalizedVectors, RowsAreUnitSumFrequencies)
{
    trace::IntervalProfile profile = shapedProfile(60);
    auto rows = normalizedIntervalVectors(profile, 16);
    ASSERT_EQ(rows.size(), profile.numIntervals());
    for (const auto &row : rows) {
        ASSERT_EQ(row.size(), 16u);
        double sum = 0.0;
        for (double v : row) {
            EXPECT_GE(v, 0.0);
            sum += v;
        }
        EXPECT_NEAR(sum, 1.0, 1e-9);
    }
}

TEST(NormalizedVectors, SameShapeGivesSimilarRows)
{
    // Intervals 2 and 32 share planted shape 0; interval 12 is
    // shape 1 — distances in row space must reflect that.
    trace::IntervalProfile profile = shapedProfile(60);
    auto rows = normalizedIntervalVectors(profile, 16);
    auto dist = [&](std::size_t a, std::size_t b) {
        double d = 0.0;
        for (std::size_t i = 0; i < rows[a].size(); ++i)
            d += (rows[a][i] - rows[b][i]) *
                 (rows[a][i] - rows[b][i]);
        return std::sqrt(d);
    };
    EXPECT_LT(dist(2, 32), dist(2, 12));
}
