/**
 * @file
 * Tests for the parallel experiment runner: job-count resolution,
 * deterministic index-ordered results, exception propagation, and
 * the DESIGN.md invariant that runGrid() at any job count is
 * bit-identical to the serial classifyProfile() loop.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "analysis/experiment.hh"
#include "analysis/parallel_runner.hh"
#include "trace/interval_profile.hh"

using namespace tpcp;
using namespace tpcp::analysis;

namespace
{

/**
 * A hand-built profile with three synthetic code regimes so the
 * classifier allocates several phases. Deterministic: no simulation,
 * no randomness.
 */
trace::IntervalProfile
syntheticProfile(unsigned seed)
{
    trace::IntervalProfile p("synthetic", "none", 1000, {16, 32});
    for (unsigned i = 0; i < 60; ++i) {
        unsigned regime = (i / 20) % 3;
        trace::IntervalRecord rec;
        rec.cpi = 1.0 + 0.5 * regime + 0.001 * ((i + seed) % 7);
        rec.insts = 1000;
        rec.accums = {std::vector<std::uint32_t>(16, 0),
                      std::vector<std::uint32_t>(32, 0)};
        for (unsigned d = 0; d < 2; ++d) {
            for (std::size_t b = 0; b < rec.accums[d].size(); ++b) {
                rec.accums[d][b] = static_cast<std::uint32_t>(
                    ((regime * 37 + b * 13 + seed) % 97) * 50);
                rec.accumTotal += rec.accums[d][b];
            }
        }
        p.push(std::move(rec));
    }
    return p;
}

std::vector<phase::ClassifierConfig>
sweepConfigs()
{
    std::vector<phase::ClassifierConfig> configs;
    phase::ClassifierConfig base;
    base.numCounters = 32;
    configs.push_back(base);
    phase::ClassifierConfig few = base;
    few.numCounters = 16;
    configs.push_back(few);
    phase::ClassifierConfig tight = base;
    tight.similarityThreshold = 0.10;
    configs.push_back(tight);
    return configs;
}

} // namespace

TEST(ParallelRunner, EffectiveJobsClampsToTaskCount)
{
    EXPECT_EQ(effectiveJobs(8, 3), 3u);
    EXPECT_EQ(effectiveJobs(2, 100), 2u);
    EXPECT_EQ(effectiveJobs(1, 100), 1u);
    EXPECT_EQ(effectiveJobs(4, 0), 1u);
    EXPECT_GE(effectiveJobs(0, 100), 1u);
}

TEST(ParallelRunner, RunIndexedMatchesSerialOrder)
{
    auto square = [](std::size_t i) { return i * i; };
    auto serial = runIndexed(64, 1, square);
    auto parallel = runIndexed(64, 4, square);
    ASSERT_EQ(serial.size(), 64u);
    EXPECT_EQ(parallel, serial);
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], i * i);
}

TEST(ParallelRunner, RunIndexedZeroTasks)
{
    auto out = runIndexed(0, 4, [](std::size_t i) { return i; });
    EXPECT_TRUE(out.empty());
}

TEST(ParallelRunner, RunIndexedPropagatesException)
{
    auto boom = [](std::size_t i) -> int {
        if (i == 5)
            throw std::runtime_error("cell failed");
        return static_cast<int>(i);
    };
    EXPECT_THROW(runIndexed(16, 4, boom), std::runtime_error);
    EXPECT_THROW(runIndexed(16, 1, boom), std::runtime_error);
}

TEST(ParallelRunner, RunGridBitIdenticalToSerialLoop)
{
    std::vector<NamedProfile> profiles;
    profiles.emplace_back("wl/a", syntheticProfile(0));
    profiles.emplace_back("wl/b", syntheticProfile(3));
    std::vector<phase::ClassifierConfig> configs = sweepConfigs();

    auto parallel = runGrid(profiles, configs, 4);

    ASSERT_EQ(parallel.size(), profiles.size() * configs.size());
    for (std::size_t w = 0; w < profiles.size(); ++w) {
        for (std::size_t c = 0; c < configs.size(); ++c) {
            ClassificationResult serial = classifyProfile(
                profiles[w].second, configs[c]);
            const ClassificationResult &par =
                parallel[w * configs.size() + c];
            // Exact (bitwise) equality, not EXPECT_NEAR: the
            // parallel path must run the identical computation.
            EXPECT_EQ(par.trace.phases, serial.trace.phases);
            EXPECT_EQ(par.trace.cpis, serial.trace.cpis);
            EXPECT_EQ(par.numPhases, serial.numPhases);
            EXPECT_EQ(par.covCpi, serial.covCpi);
            EXPECT_EQ(par.wholeProgramCov, serial.wholeProgramCov);
            EXPECT_EQ(par.transitionFraction,
                      serial.transitionFraction);
        }
    }
}

TEST(ParallelRunner, RunGridJobCountsAgree)
{
    std::vector<NamedProfile> profiles;
    profiles.emplace_back("wl/a", syntheticProfile(1));
    std::vector<phase::ClassifierConfig> configs = sweepConfigs();

    auto one = runGrid(profiles, configs, 1);
    auto two = runGrid(profiles, configs, 2);
    auto eight = runGrid(profiles, configs, 8);
    ASSERT_EQ(one.size(), two.size());
    ASSERT_EQ(one.size(), eight.size());
    for (std::size_t i = 0; i < one.size(); ++i) {
        EXPECT_EQ(two[i].trace.phases, one[i].trace.phases);
        EXPECT_EQ(eight[i].trace.phases, one[i].trace.phases);
        EXPECT_EQ(two[i].covCpi, one[i].covCpi);
        EXPECT_EQ(eight[i].covCpi, one[i].covCpi);
    }
}
