/**
 * @file
 * Unit tests for the analysis metrics: weighted per-phase CPI CoV
 * (paper section 3.1), whole-program CoV and run-length summaries.
 */

#include <gtest/gtest.h>

#include "analysis/cov.hh"
#include "analysis/run_lengths.hh"

using namespace tpcp;
using namespace tpcp::analysis;

TEST(Cov, PerfectClassificationZero)
{
    // Each phase internally homogeneous -> CoV 0 even though the
    // program as a whole varies.
    std::vector<PhaseId> phases = {1, 1, 2, 2, 1, 2};
    std::vector<double> cpis = {1.0, 1.0, 3.0, 3.0, 1.0, 3.0};
    EXPECT_NEAR(weightedPhaseCov(phases, cpis), 0.0, 1e-12);
    EXPECT_GT(wholeProgramCov(cpis), 0.4);
}

TEST(Cov, SinglePhaseEqualsWholeProgram)
{
    std::vector<PhaseId> phases(6, 1);
    std::vector<double> cpis = {1.0, 2.0, 3.0, 1.0, 2.0, 3.0};
    EXPECT_NEAR(weightedPhaseCov(phases, cpis),
                wholeProgramCov(cpis), 1e-12);
}

TEST(Cov, WeightsByPhaseShare)
{
    // Phase 1: 8 intervals with CoV c1; phase 2: 2 intervals CoV 0.
    std::vector<PhaseId> phases = {1, 1, 1, 1, 1, 1, 1, 1, 2, 2};
    std::vector<double> cpis = {1, 3, 1, 3, 1, 3, 1, 3, 5, 5};
    double c1 = wholeProgramCov({1, 3, 1, 3, 1, 3, 1, 3});
    EXPECT_NEAR(weightedPhaseCov(phases, cpis), 0.8 * c1, 1e-12);
}

TEST(Cov, TransitionExcludedByDefault)
{
    std::vector<PhaseId> phases = {transitionPhaseId, 1, 1,
                                   transitionPhaseId};
    std::vector<double> cpis = {100.0, 2.0, 2.0, 0.001};
    EXPECT_NEAR(weightedPhaseCov(phases, cpis), 0.0, 1e-12)
        << "wild transition CPIs must not pollute the metric";
    EXPECT_GT(weightedPhaseCov(phases, cpis, false), 0.4);
}

TEST(Cov, AllTransitionGivesZero)
{
    std::vector<PhaseId> phases(4, transitionPhaseId);
    std::vector<double> cpis = {1, 2, 3, 4};
    EXPECT_EQ(weightedPhaseCov(phases, cpis), 0.0);
}

TEST(Cov, EmptyInput)
{
    EXPECT_EQ(weightedPhaseCov({}, {}), 0.0);
    EXPECT_EQ(wholeProgramCov({}), 0.0);
}

TEST(RunLengths, SplitsStableAndTransition)
{
    // 0 = transition. Runs: [1 x3] [0 x2] [2 x5] [0 x1] [1 x1].
    std::vector<PhaseId> phases = {1, 1, 1, 0, 0, 2, 2,
                                   2, 2, 2, 0, 1};
    RunLengthSummary s = summarizeRunLengths(phases);
    EXPECT_EQ(s.stableRuns, 3u);
    EXPECT_NEAR(s.stableAvg, 3.0, 1e-12);
    EXPECT_EQ(s.transitionRuns, 2u);
    EXPECT_NEAR(s.transitionAvg, 1.5, 1e-12);
}

TEST(RunLengths, StddevComputed)
{
    std::vector<PhaseId> phases = {1, 1, 2, 2, 2, 2, 2, 2};
    RunLengthSummary s = summarizeRunLengths(phases);
    EXPECT_EQ(s.stableRuns, 2u);
    EXPECT_NEAR(s.stableAvg, 4.0, 1e-12);
    EXPECT_NEAR(s.stableStddev, 2.0, 1e-12);
}

TEST(RunLengths, EmptyTrace)
{
    RunLengthSummary s = summarizeRunLengths({});
    EXPECT_EQ(s.stableRuns, 0u);
    EXPECT_EQ(s.transitionRuns, 0u);
    EXPECT_EQ(s.stableAvg, 0.0);
}
