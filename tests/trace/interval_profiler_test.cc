/**
 * @file
 * Tests for the interval profiler: interval splitting, CPI
 * computation, branch accounting into the accumulators and tail
 * handling.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "../test_helpers.hh"
#include "trace/interval_profiler.hh"
#include "uarch/ooo_core.hh"
#include "uarch/simulator.hh"

using namespace tpcp;
using namespace tpcp::trace;
using namespace tpcp::uarch;

namespace
{

IntervalProfile
profileLoop(InstCount run_insts, InstCount interval,
            std::vector<unsigned> dims = {8, 16})
{
    isa::Program p = test::loopProgram(7, 4);
    auto sched = test::fixedSchedule({{0, run_insts}});
    OooCore core(MachineConfig::table1());
    Simulator sim(p, sched, core, 1);
    IntervalProfiler profiler(core, "loop", interval, dims);
    sim.addSink(&profiler);
    sim.run();
    return profiler.takeProfile();
}

} // namespace

TEST(IntervalProfiler, SplitsIntoFixedIntervals)
{
    IntervalProfile prof = profileLoop(10'000, 1'000);
    EXPECT_EQ(prof.numIntervals(), 10u);
    for (const auto &rec : prof.intervals())
        EXPECT_EQ(rec.insts, 1'000u);
}

TEST(IntervalProfiler, DropsPartialTail)
{
    IntervalProfile prof = profileLoop(10'500, 1'000);
    EXPECT_EQ(prof.numIntervals(), 10u)
        << "the trailing 500 instructions are dropped";
}

TEST(IntervalProfiler, CpiPositiveAndStable)
{
    IntervalProfile prof = profileLoop(50'000, 5'000);
    ASSERT_EQ(prof.numIntervals(), 10u);
    for (const auto &rec : prof.intervals()) {
        EXPECT_GT(rec.cpi, 0.0);
        EXPECT_LT(rec.cpi, 10.0);
    }
    // A steady loop: intervals after warmup have near-equal CPI.
    double c1 = prof.interval(5).cpi;
    double c2 = prof.interval(9).cpi;
    EXPECT_NEAR(c1, c2, 0.1 * c1);
}

TEST(IntervalProfiler, AccumulatorsSumToBranchedInsts)
{
    // Every instruction is attributed to some branch record except
    // those after the interval's last branch (they roll into the
    // next interval). Totals must be close to the interval length.
    IntervalProfile prof = profileLoop(8'000, 1'000);
    for (std::size_t i = 0; i < prof.numIntervals(); ++i) {
        const auto &rec = prof.interval(i);
        std::uint64_t sum = std::accumulate(
            rec.accums[0].begin(), rec.accums[0].end(), 0ull);
        EXPECT_EQ(sum, rec.accumTotal);
        EXPECT_NEAR(static_cast<double>(rec.accumTotal),
                    static_cast<double>(rec.insts),
                    8.0 + 1.0)
            << "at most one block of slack at the boundary";
    }
}

TEST(IntervalProfiler, MultipleDimConfigsConsistent)
{
    IntervalProfile prof = profileLoop(5'000, 1'000, {8, 16, 32});
    ASSERT_EQ(prof.dims().size(), 3u);
    for (const auto &rec : prof.intervals()) {
        std::uint64_t s8 = std::accumulate(rec.accums[0].begin(),
                                           rec.accums[0].end(),
                                           0ull);
        std::uint64_t s16 = std::accumulate(rec.accums[1].begin(),
                                            rec.accums[1].end(),
                                            0ull);
        std::uint64_t s32 = std::accumulate(rec.accums[2].begin(),
                                            rec.accums[2].end(),
                                            0ull);
        EXPECT_EQ(s8, s16);
        EXPECT_EQ(s16, s32)
            << "all dimension configs see the same increments";
    }
}

TEST(IntervalProfiler, SingleBranchPcConcentratesMass)
{
    // The loop program has exactly one branch PC, so each interval's
    // accumulator vector must have exactly one non-zero counter.
    IntervalProfile prof = profileLoop(4'000, 1'000);
    for (const auto &rec : prof.intervals()) {
        int nonzero = 0;
        for (auto c : rec.accums[0])
            nonzero += c ? 1 : 0;
        EXPECT_EQ(nonzero, 1);
    }
}
