/**
 * @file
 * Unit tests for interval-profile storage: construction constraints
 * and binary save/load round trips.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>

#include "trace/interval_profile.hh"

using namespace tpcp;
using namespace tpcp::trace;

namespace
{

IntervalProfile
sampleProfile()
{
    IntervalProfile p("test/wl", "ooo", 1000, {4, 8});
    for (int i = 0; i < 5; ++i) {
        IntervalRecord rec;
        rec.cpi = 1.0 + 0.1 * i;
        rec.insts = 1000;
        rec.accumTotal = 900 + i;
        rec.accums = {std::vector<std::uint32_t>(4, 10u + i),
                      std::vector<std::uint32_t>(8, 20u + i)};
        p.push(std::move(rec));
    }
    return p;
}

std::string
tmpPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

} // namespace

TEST(IntervalProfile, Metadata)
{
    IntervalProfile p = sampleProfile();
    EXPECT_EQ(p.workload(), "test/wl");
    EXPECT_EQ(p.coreName(), "ooo");
    EXPECT_EQ(p.intervalLength(), 1000u);
    EXPECT_EQ(p.numIntervals(), 5u);
}

TEST(IntervalProfile, DimIndexLookup)
{
    IntervalProfile p = sampleProfile();
    EXPECT_EQ(p.dimIndex(4), 0u);
    EXPECT_EQ(p.dimIndex(8), 1u);
}

TEST(IntervalProfile, CpisInOrder)
{
    IntervalProfile p = sampleProfile();
    auto cpis = p.cpis();
    ASSERT_EQ(cpis.size(), 5u);
    EXPECT_DOUBLE_EQ(cpis[0], 1.0);
    EXPECT_DOUBLE_EQ(cpis[4], 1.4);
}

TEST(IntervalProfile, SaveLoadRoundTrip)
{
    IntervalProfile p = sampleProfile();
    std::string path = tmpPath("roundtrip.tpcpprof");
    ASSERT_TRUE(p.save(path));

    IntervalProfile q;
    ASSERT_TRUE(q.load(path));
    EXPECT_EQ(q.workload(), p.workload());
    EXPECT_EQ(q.coreName(), p.coreName());
    EXPECT_EQ(q.intervalLength(), p.intervalLength());
    EXPECT_EQ(q.dims(), p.dims());
    ASSERT_EQ(q.numIntervals(), p.numIntervals());
    for (std::size_t i = 0; i < p.numIntervals(); ++i) {
        EXPECT_DOUBLE_EQ(q.interval(i).cpi, p.interval(i).cpi);
        EXPECT_EQ(q.interval(i).insts, p.interval(i).insts);
        EXPECT_EQ(q.interval(i).accumTotal,
                  p.interval(i).accumTotal);
        EXPECT_EQ(q.interval(i).accums, p.interval(i).accums);
    }
    std::remove(path.c_str());
}

TEST(IntervalProfile, LoadMissingFileFails)
{
    IntervalProfile p;
    EXPECT_FALSE(p.load(tmpPath("does_not_exist.tpcpprof")));
    EXPECT_EQ(p.numIntervals(), 0u);
}

TEST(IntervalProfile, LoadGarbageFails)
{
    std::string path = tmpPath("garbage.tpcpprof");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a profile", f);
    std::fclose(f);
    IntervalProfile p;
    EXPECT_FALSE(p.load(path));
    std::remove(path.c_str());
}

TEST(IntervalProfile, LoadTruncatedFails)
{
    IntervalProfile p = sampleProfile();
    std::string path = tmpPath("trunc.tpcpprof");
    ASSERT_TRUE(p.save(path));
    // Truncate the file to half size.
    std::FILE *f = std::fopen(path.c_str(), "rb");
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
    IntervalProfile q;
    EXPECT_FALSE(q.load(path));
    std::remove(path.c_str());
}

TEST(IntervalProfile, PushRejectsWrongShape)
{
    IntervalProfile p("w", "ooo", 100, {4});
    IntervalRecord bad;
    bad.accums = {std::vector<std::uint32_t>(8, 1)};
    EXPECT_DEATH(p.push(std::move(bad)), "width|mismatch");
}

TEST(IntervalProfile, MachineHashRoundTrip)
{
    IntervalProfile p = sampleProfile();
    p.setMachineHash(0xdeadbeefcafef00dull);
    std::string path = tmpPath("mhash.tpcpprof");
    ASSERT_TRUE(p.save(path));

    IntervalProfile q;
    ASSERT_TRUE(q.load(path));
    EXPECT_EQ(q.machineHash(), 0xdeadbeefcafef00dull);
    std::remove(path.c_str());
}

TEST(IntervalProfile, LoadRejectsTrailingGarbage)
{
    IntervalProfile p = sampleProfile();
    std::string path = tmpPath("trailing.tpcpprof");
    ASSERT_TRUE(p.save(path));
    std::FILE *f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputs("extra", f);
    std::fclose(f);

    IntervalProfile q;
    EXPECT_FALSE(q.load(path));
    std::remove(path.c_str());
}

TEST(IntervalProfile, LoadRejectsOldVersion)
{
    IntervalProfile p = sampleProfile();
    std::string path = tmpPath("oldver.tpcpprof");
    ASSERT_TRUE(p.save(path));
    // Patch the version field (second uint32 in the header) back to
    // the pre-machine-hash version 1.
    std::FILE *f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 4, SEEK_SET);
    std::uint32_t old_version = 1;
    ASSERT_EQ(std::fwrite(&old_version, 4, 1, f), 1u);
    std::fclose(f);

    IntervalProfile q;
    EXPECT_FALSE(q.load(path));
    std::remove(path.c_str());
}

TEST(IntervalProfile, FailedLoadLeavesProfileEmpty)
{
    // A profile that already holds data must come out empty after a
    // failed load, not with a mix of old and half-read state.
    IntervalProfile p = sampleProfile();
    std::string path = tmpPath("halfread.tpcpprof");
    ASSERT_TRUE(p.save(path));
    std::FILE *f = std::fopen(path.c_str(), "rb");
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), size - 8), 0);

    IntervalProfile q = sampleProfile();
    ASSERT_GT(q.numIntervals(), 0u);
    EXPECT_FALSE(q.load(path));
    EXPECT_EQ(q.numIntervals(), 0u);
    EXPECT_TRUE(q.workload().empty());
    EXPECT_TRUE(q.dims().empty());
    std::remove(path.c_str());
}

TEST(IntervalProfile, SaveLeavesNoTempFiles)
{
    namespace fs = std::filesystem;
    std::string dir =
        std::string(::testing::TempDir()) + "tpcp_prof_atomic";
    fs::remove_all(dir);
    fs::create_directories(dir);
    IntervalProfile p = sampleProfile();
    ASSERT_TRUE(p.save(dir + "/x.tpcpprof"));
    std::size_t entries = 0;
    for (const auto &e : fs::directory_iterator(dir)) {
        ++entries;
        EXPECT_EQ(e.path().extension(), ".tpcpprof")
            << "unexpected leftover: " << e.path();
    }
    EXPECT_EQ(entries, 1u);
    fs::remove_all(dir);
}
