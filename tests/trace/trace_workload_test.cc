/**
 * @file
 * Trace-backed workloads: the content-hash memo cache (hit on
 * unchanged bytes, re-parse on changed bytes, stale entry preserved
 * across a corrupt rewrite) and the first-class-workload guarantee —
 * classifying an exported trace yields the exact phase stream of the
 * profile it was exported from.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/experiment.hh"
#include "common/status.hh"
#include "trace/trace_workload.hh"
#include "workload/adversarial.hh"

using namespace tpcp;
using namespace tpcp::trace;

namespace
{

std::string
tmpPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

IntervalProfile
sampleProfile(double cpi0 = 1.0)
{
    IntervalProfile p("cachewl", "ooo", 1000, {4, 8});
    for (int i = 0; i < 4; ++i) {
        IntervalRecord rec;
        rec.cpi = cpi0 + 0.5 * i;
        rec.insts = 1000;
        rec.accumTotal = 400;
        rec.accums = {std::vector<std::uint32_t>(4, 100u),
                      std::vector<std::uint32_t>(8, 50u + i)};
        p.push(std::move(rec));
    }
    return p;
}

TEST(TraceCache, SecondLoadIsAMemoHit)
{
    resetTraceCache();
    const std::string path = tmpPath("memo.tpcptrace");
    writeTrace(path, sampleProfile(), "");

    IntervalProfile a = getTraceProfile(path);
    IntervalProfile b = getTraceProfile(path);
    EXPECT_EQ(a.numIntervals(), b.numIntervals());

    TraceCacheStats stats = traceCacheStats();
    EXPECT_EQ(stats.parses, 1u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.invalidations, 0u);
    std::remove(path.c_str());
}

TEST(TraceCache, ChangedBytesBustTheCache)
{
    resetTraceCache();
    const std::string path = tmpPath("bust.tpcptrace");
    writeTrace(path, sampleProfile(1.0), "v1");
    IntervalProfile first = getTraceProfile(path);

    // Same path, different bytes: the content hash, not the path,
    // keys the cache.
    writeTrace(path, sampleProfile(9.0), "v2");
    IntervalProfile second = getTraceProfile(path);
    EXPECT_NE(first.interval(0).cpi, second.interval(0).cpi);
    EXPECT_DOUBLE_EQ(second.interval(0).cpi, 9.0);

    TraceCacheStats stats = traceCacheStats();
    EXPECT_EQ(stats.parses, 2u);
    EXPECT_EQ(stats.invalidations, 1u);
    std::remove(path.c_str());
}

TEST(TraceCache, CorruptRewriteRaisesAndKeepsOldEntry)
{
    resetTraceCache();
    const std::string path = tmpPath("corrupt.tpcptrace");
    writeTrace(path, sampleProfile(2.0), "good");
    getTraceProfile(path);

    {
        std::ofstream out(path, std::ios::binary);
        out << "not a trace";
    }
    EXPECT_THROW(getTraceProfile(path), Error);

    // The failed reload never replaced the memoized profile: after
    // restoring the good bytes the old entry serves again.
    writeTrace(path, sampleProfile(2.0), "good");
    IntervalProfile again = getTraceProfile(path);
    EXPECT_DOUBLE_EQ(again.interval(0).cpi, 2.0);
    TraceCacheStats stats = traceCacheStats();
    EXPECT_EQ(stats.parses, 1u);
    EXPECT_EQ(stats.hits, 1u);
    std::remove(path.c_str());
}

TEST(TraceWorkload, ClassifyTraceEqualsClassifyProfile)
{
    // An exported trace is the same workload: identical phase
    // stream, interval for interval.
    workload::AdversarialSpec spec;
    spec.family = "oscillation";
    spec.intervals = 120;
    workload::AdversarialTrace adv =
        workload::makeAdversarial(spec);

    const std::string path = tmpPath("classify.tpcptrace");
    writeTrace(path, adv.profile, "");
    IntervalProfile loaded = getTraceProfile(path);

    phase::ClassifierConfig cfg =
        phase::ClassifierConfig::paperDefault();
    analysis::ClassificationResult direct =
        analysis::classifyProfile(adv.profile, cfg);
    analysis::ClassificationResult via =
        analysis::classifyProfile(loaded, cfg);
    EXPECT_EQ(direct.trace.phases, via.trace.phases);
    EXPECT_EQ(direct.numPhases, via.numPhases);
    std::remove(path.c_str());
}

TEST(TraceWorkload, LoadTraceProfilesSplitsAndNames)
{
    resetTraceCache();
    const std::string p1 = tmpPath("list1.tpcptrace");
    const std::string p2 = tmpPath("list2.tpcptrace");
    writeTrace(p1, sampleProfile(), "");
    workload::AdversarialSpec spec;
    spec.intervals = 10;
    writeTrace(p2, workload::makeAdversarial(spec).profile, "");

    auto loaded = loadTraceProfiles(p1 + "," + p2);
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_EQ(loaded[0].first, "cachewl");
    EXPECT_EQ(loaded[1].first, "adv:phase-alias/s1");
    std::remove(p1.c_str());
    std::remove(p2.c_str());
}

} // namespace
