/**
 * @file
 * Tests for the profile cache: build-and-cache semantics and cache
 * path construction. Uses a tiny interval count to stay fast.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "trace/profile_cache.hh"

using namespace tpcp;
using namespace tpcp::trace;

namespace
{

ProfileOptions
tinyOptions(const std::string &dir)
{
    ProfileOptions opts;
    opts.intervalLen = 50'000;
    opts.dims = {16};
    opts.coreName = "simple"; // fast core for tests
    opts.cacheDir = dir;
    return opts;
}

} // namespace

TEST(ProfileCache, PathEncodesOptions)
{
    ProfileOptions opts;
    opts.intervalLen = 12345;
    opts.dims = {8, 16};
    opts.coreName = "ooo";
    opts.cacheDir = "/tmp/cachex";
    std::string path = profileCachePath("gcc/1", opts);
    EXPECT_NE(path.find("gcc_1"), std::string::npos);
    EXPECT_NE(path.find("ooo"), std::string::npos);
    EXPECT_NE(path.find("i12345"), std::string::npos);
    EXPECT_NE(path.find("d8-16"), std::string::npos);
    EXPECT_NE(path.find("/tmp/cachex"), std::string::npos);
}

TEST(ProfileCache, BuildThenLoadIdentical)
{
    std::string dir =
        std::string(::testing::TempDir()) + "tpcp_cache_test";
    std::filesystem::remove_all(dir);
    ProfileOptions opts = tinyOptions(dir);

    workload::Workload w = workload::makeWorkload("perl/d");
    IntervalProfile first = getProfile(w, opts);
    ASSERT_GT(first.numIntervals(), 0u);
    EXPECT_TRUE(std::filesystem::exists(
        profileCachePath(w.name, opts)));

    // Second call loads from disk; contents must be identical.
    IntervalProfile second = getProfile(w, opts);
    ASSERT_EQ(second.numIntervals(), first.numIntervals());
    for (std::size_t i = 0; i < first.numIntervals(); ++i) {
        EXPECT_DOUBLE_EQ(second.interval(i).cpi,
                         first.interval(i).cpi);
        EXPECT_EQ(second.interval(i).accums,
                  first.interval(i).accums);
    }
    std::filesystem::remove_all(dir);
}

TEST(ProfileCache, UseCacheFalseSkipsDisk)
{
    std::string dir =
        std::string(::testing::TempDir()) + "tpcp_cache_test2";
    std::filesystem::remove_all(dir);
    ProfileOptions opts = tinyOptions(dir);
    opts.useCache = false;
    workload::Workload w = workload::makeWorkload("perl/d");
    IntervalProfile p = buildProfile(w, opts);
    EXPECT_GT(p.numIntervals(), 0u);
    EXPECT_FALSE(std::filesystem::exists(dir));
}

TEST(ProfileCache, DeterministicRebuild)
{
    ProfileOptions opts = tinyOptions("");
    opts.useCache = false;
    workload::Workload w = workload::makeWorkload("perl/d");
    IntervalProfile a = buildProfile(w, opts);
    IntervalProfile b = buildProfile(w, opts);
    ASSERT_EQ(a.numIntervals(), b.numIntervals());
    for (std::size_t i = 0; i < a.numIntervals(); ++i) {
        EXPECT_DOUBLE_EQ(a.interval(i).cpi, b.interval(i).cpi);
        EXPECT_EQ(a.interval(i).accums, b.interval(i).accums);
    }
}

TEST(ProfileCache, MachineHashTagsNonDefaultConfigs)
{
    ProfileOptions table1;
    ProfileOptions custom;
    custom.machine.dcache.sizeBytes = 8 * 1024;
    std::string p1 = profileCachePath("mcf", table1);
    std::string p2 = profileCachePath("mcf", custom);
    EXPECT_NE(p1, p2) << "different machines must not share caches";
    EXPECT_EQ(p1.find("_m"), std::string::npos)
        << "Table-1 profiles keep the short name";
    EXPECT_NE(p2.find("_m"), std::string::npos);
}

TEST(ProfileCache, EnvironmentVariableOverridesDirectory)
{
    ProfileOptions opts; // no explicit cacheDir
    setenv("TPCP_PROFILE_DIR", "/tmp/tpcp_env_dir", 1);
    std::string path = profileCachePath("mcf", opts);
    unsetenv("TPCP_PROFILE_DIR");
    EXPECT_EQ(path.find("/tmp/tpcp_env_dir"), 0u);
}

TEST(ProfileCache, CustomMachineChangesTiming)
{
    // A machine with a much slower memory must yield higher CPI on a
    // memory-bound workload.
    ProfileOptions fast = {};
    fast.intervalLen = 50'000;
    fast.dims = {16};
    fast.coreName = "simple";
    fast.useCache = false;
    ProfileOptions slow = fast;
    slow.machine.memoryLatency = 480;

    workload::Workload w = workload::makeWorkload("perl/d");
    IntervalProfile pf = buildProfile(w, fast);
    IntervalProfile ps = buildProfile(w, slow);
    double cf = 0, cs = 0;
    for (std::size_t i = 0; i < pf.numIntervals(); ++i) {
        cf += pf.interval(i).cpi;
        cs += ps.interval(i).cpi;
    }
    EXPECT_GT(cs, cf * 1.5);
}
