/**
 * @file
 * Tests for the profile cache: build-and-cache semantics and cache
 * path construction. Uses a tiny interval count to stay fast.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "common/status.hh"
#include "trace/profile_cache.hh"

using namespace tpcp;
using namespace tpcp::trace;

namespace
{

ProfileOptions
tinyOptions(const std::string &dir)
{
    ProfileOptions opts;
    opts.intervalLen = 50'000;
    opts.dims = {16};
    opts.coreName = "simple"; // fast core for tests
    opts.cacheDir = dir;
    return opts;
}

} // namespace

TEST(ProfileCache, PathEncodesOptions)
{
    ProfileOptions opts;
    opts.intervalLen = 12345;
    opts.dims = {8, 16};
    opts.coreName = "ooo";
    opts.cacheDir = "/tmp/cachex";
    std::string path = profileCachePath("gcc/1", opts);
    EXPECT_NE(path.find("gcc_1"), std::string::npos);
    EXPECT_NE(path.find("ooo"), std::string::npos);
    EXPECT_NE(path.find("i12345"), std::string::npos);
    EXPECT_NE(path.find("d8-16"), std::string::npos);
    EXPECT_NE(path.find("/tmp/cachex"), std::string::npos);
}

TEST(ProfileCache, BuildThenLoadIdentical)
{
    std::string dir =
        std::string(::testing::TempDir()) + "tpcp_cache_test";
    std::filesystem::remove_all(dir);
    ProfileOptions opts = tinyOptions(dir);

    workload::Workload w = workload::makeWorkload("perl/d");
    IntervalProfile first = getProfile(w, opts);
    ASSERT_GT(first.numIntervals(), 0u);
    EXPECT_TRUE(std::filesystem::exists(
        profileCachePath(w.name, opts)));

    // Second call loads from disk; contents must be identical.
    IntervalProfile second = getProfile(w, opts);
    ASSERT_EQ(second.numIntervals(), first.numIntervals());
    for (std::size_t i = 0; i < first.numIntervals(); ++i) {
        EXPECT_DOUBLE_EQ(second.interval(i).cpi,
                         first.interval(i).cpi);
        EXPECT_EQ(second.interval(i).accums,
                  first.interval(i).accums);
    }
    std::filesystem::remove_all(dir);
}

TEST(ProfileCache, UseCacheFalseSkipsDisk)
{
    std::string dir =
        std::string(::testing::TempDir()) + "tpcp_cache_test2";
    std::filesystem::remove_all(dir);
    ProfileOptions opts = tinyOptions(dir);
    opts.useCache = false;
    workload::Workload w = workload::makeWorkload("perl/d");
    IntervalProfile p = buildProfile(w, opts);
    EXPECT_GT(p.numIntervals(), 0u);
    EXPECT_FALSE(std::filesystem::exists(dir));
}

TEST(ProfileCache, DeterministicRebuild)
{
    ProfileOptions opts = tinyOptions("");
    opts.useCache = false;
    workload::Workload w = workload::makeWorkload("perl/d");
    IntervalProfile a = buildProfile(w, opts);
    IntervalProfile b = buildProfile(w, opts);
    ASSERT_EQ(a.numIntervals(), b.numIntervals());
    for (std::size_t i = 0; i < a.numIntervals(); ++i) {
        EXPECT_DOUBLE_EQ(a.interval(i).cpi, b.interval(i).cpi);
        EXPECT_EQ(a.interval(i).accums, b.interval(i).accums);
    }
}

TEST(ProfileCache, MachineHashTagsNonDefaultConfigs)
{
    ProfileOptions table1;
    ProfileOptions custom;
    custom.machine.dcache.sizeBytes = 8 * 1024;
    std::string p1 = profileCachePath("mcf", table1);
    std::string p2 = profileCachePath("mcf", custom);
    EXPECT_NE(p1, p2) << "different machines must not share caches";
    EXPECT_EQ(p1.find("_m"), std::string::npos)
        << "Table-1 profiles keep the short name";
    EXPECT_NE(p2.find("_m"), std::string::npos);
}

TEST(ProfileCache, EnvironmentVariableOverridesDirectory)
{
    ProfileOptions opts; // no explicit cacheDir
    setenv("TPCP_PROFILE_DIR", "/tmp/tpcp_env_dir", 1);
    std::string path = profileCachePath("mcf", opts);
    unsetenv("TPCP_PROFILE_DIR");
    EXPECT_EQ(path.find("/tmp/tpcp_env_dir"), 0u);
}

TEST(ProfileCache, CustomMachineChangesTiming)
{
    // A machine with a much slower memory must yield higher CPI on a
    // memory-bound workload.
    ProfileOptions fast = {};
    fast.intervalLen = 50'000;
    fast.dims = {16};
    fast.coreName = "simple";
    fast.useCache = false;
    ProfileOptions slow = fast;
    slow.machine.memoryLatency = 480;

    workload::Workload w = workload::makeWorkload("perl/d");
    IntervalProfile pf = buildProfile(w, fast);
    IntervalProfile ps = buildProfile(w, slow);
    double cf = 0, cs = 0;
    for (std::size_t i = 0; i < pf.numIntervals(); ++i) {
        cf += pf.interval(i).cpi;
        cs += ps.interval(i).cpi;
    }
    EXPECT_GT(cs, cf * 1.5);
}

TEST(ProfileCache, TimingParamsChangeCachePath)
{
    // Machines differing only in a timing parameter the old name
    // hash omitted must not share a cache file.
    ProfileOptions base;
    std::string base_path = profileCachePath("mcf", base);

    ProfileOptions dlat = base;
    dlat.machine.dcache.hitLatency += 2;
    EXPECT_NE(profileCachePath("mcf", dlat), base_path);

    ProfileOptions l2lat = base;
    l2lat.machine.l2.hitLatency += 4;
    EXPECT_NE(profileCachePath("mcf", l2lat), base_path);

    ProfileOptions bpred = base;
    bpred.machine.branchPred.mispredictPenalty += 1;
    EXPECT_NE(profileCachePath("mcf", bpred), base_path);

    ProfileOptions tlb = base;
    tlb.machine.dtlb.missLatency += 10;
    EXPECT_NE(profileCachePath("mcf", tlb), base_path);
}

TEST(ProfileCache, MismatchedMachineHashRejectedOnLoad)
{
    std::string dir =
        std::string(::testing::TempDir()) + "tpcp_cache_mismatch";
    std::filesystem::remove_all(dir);
    ProfileOptions opts = tinyOptions(dir);
    workload::Workload w = workload::makeWorkload("perl/d");

    IntervalProfile first = getProfile(w, opts);
    std::string path = profileCachePath(w.name, opts);
    ASSERT_TRUE(std::filesystem::exists(path));

    // Tamper with the stored machine hash, as if the file had been
    // produced by a build whose timing parameters silently differed.
    IntervalProfile tampered;
    ASSERT_TRUE(tampered.load(path));
    tampered.setMachineHash(tampered.machineHash() ^ 1);
    ASSERT_TRUE(tampered.save(path));

    resetProfileCacheStats();
    IntervalProfile second = getProfile(w, opts);
    ProfileCacheStats stats = profileCacheStats();
    EXPECT_EQ(stats.rejects, 1u);
    EXPECT_EQ(stats.builds, 1u);
    EXPECT_EQ(stats.hits, 0u);
    ASSERT_EQ(second.numIntervals(), first.numIntervals());
    for (std::size_t i = 0; i < first.numIntervals(); ++i)
        EXPECT_DOUBLE_EQ(second.interval(i).cpi,
                         first.interval(i).cpi);
    std::filesystem::remove_all(dir);
}

TEST(ProfileCache, CorruptCacheFileRebuilt)
{
    std::string dir =
        std::string(::testing::TempDir()) + "tpcp_cache_corrupt";
    std::filesystem::remove_all(dir);
    ProfileOptions opts = tinyOptions(dir);
    workload::Workload w = workload::makeWorkload("perl/d");

    IntervalProfile first = getProfile(w, opts);
    std::string path = profileCachePath(w.name, opts);
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("corrupt", f);
    std::fclose(f);

    resetProfileCacheStats();
    IntervalProfile second = getProfile(w, opts);
    EXPECT_EQ(profileCacheStats().rejects, 1u);
    EXPECT_EQ(profileCacheStats().builds, 1u);
    ASSERT_EQ(second.numIntervals(), first.numIntervals());

    // The rebuild must have repaired the cache file.
    resetProfileCacheStats();
    IntervalProfile third = getProfile(w, opts);
    EXPECT_EQ(profileCacheStats().hits, 1u);
    EXPECT_EQ(profileCacheStats().builds, 0u);
    std::filesystem::remove_all(dir);
}

TEST(ProfileCache, RequireCacheRaisesOnColdOrCorruptCache)
{
    std::string dir =
        std::string(::testing::TempDir()) + "tpcp_cache_require";
    std::filesystem::remove_all(dir);
    ProfileOptions opts = tinyOptions(dir);
    opts.requireCache = true;
    workload::Workload w = workload::makeWorkload("perl/d");

    // Cold cache: strict mode surfaces the miss instead of silently
    // spending simulation time.
    EXPECT_THROW(getProfile(w, opts), Error);

    // Warm the cache, then strict mode serves the file normally.
    ProfileOptions build = tinyOptions(dir);
    getProfile(w, build);
    resetProfileCacheStats();
    IntervalProfile p = getProfile(w, opts);
    EXPECT_GT(p.numIntervals(), 0u);
    EXPECT_EQ(profileCacheStats().hits, 1u);
    EXPECT_EQ(profileCacheStats().builds, 0u);

    // A corrupt cache file is an error in strict mode, not a rebuild.
    std::string path = profileCachePath(w.name, opts);
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("corrupt", f);
    std::fclose(f);
    EXPECT_THROW(getProfile(w, opts), Error);
    std::filesystem::remove_all(dir);
}

TEST(ProfileCache, ConcurrentGetProfileBuildsOnce)
{
    // A stampede of getProfile() calls for the same cold profile
    // must run the simulation exactly once; everyone else waits and
    // loads the cached file.
    std::string dir =
        std::string(::testing::TempDir()) + "tpcp_cache_stampede";
    std::filesystem::remove_all(dir);
    ProfileOptions opts = tinyOptions(dir);
    workload::Workload w = workload::makeWorkload("perl/d");

    resetProfileCacheStats();
    constexpr unsigned num_threads = 8;
    std::vector<IntervalProfile> results(num_threads);
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < num_threads; ++t)
        threads.emplace_back([&, t] {
            results[t] = getProfile(w, opts);
        });
    for (std::thread &t : threads)
        t.join();

    ProfileCacheStats stats = profileCacheStats();
    EXPECT_EQ(stats.builds, 1u)
        << "the simulation ran more than once";
    EXPECT_EQ(stats.hits, num_threads - 1);
    EXPECT_EQ(stats.rejects, 0u);
    for (unsigned t = 1; t < num_threads; ++t) {
        ASSERT_EQ(results[t].numIntervals(),
                  results[0].numIntervals());
        for (std::size_t i = 0; i < results[0].numIntervals(); ++i) {
            EXPECT_DOUBLE_EQ(results[t].interval(i).cpi,
                             results[0].interval(i).cpi);
            EXPECT_EQ(results[t].interval(i).accums,
                      results[0].interval(i).accums);
        }
    }
    std::filesystem::remove_all(dir);
}

TEST(ProfileCache, NoTempFilesLeftBehind)
{
    std::string dir =
        std::string(::testing::TempDir()) + "tpcp_cache_tmpfiles";
    std::filesystem::remove_all(dir);
    ProfileOptions opts = tinyOptions(dir);
    workload::Workload w = workload::makeWorkload("perl/d");
    getProfile(w, opts);
    for (const auto &e : std::filesystem::directory_iterator(dir)) {
        EXPECT_EQ(e.path().extension(), ".tpcpprof")
            << "leftover temp file: " << e.path();
    }
    std::filesystem::remove_all(dir);
}
