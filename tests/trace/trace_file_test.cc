/**
 * @file
 * The .tpcptrace format under test: write -> read byte identity,
 * idempotent re-export, content-hash stability, exhaustive
 * single-bit-flip and truncation rejection (every byte of the format
 * is covered by a structural check or a CRC), and replay of the
 * checked-in corruption corpus against its MANIFEST. (Corpus drift —
 * regeneration must reproduce the checked-in bytes — is checked by
 * the CI trace-hardening job.)
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/status.hh"
#include "trace/trace_file.hh"

using namespace tpcp;
using namespace tpcp::trace;

namespace
{

std::string
tmpPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

/** Small but complete: two dim configs, varied records. */
IntervalProfile
sampleProfile()
{
    IntervalProfile p("alias/x", "ooo", 1000, {4, 8});
    p.setMachineHash(0x1234abcd5678ef00ull);
    for (int i = 0; i < 5; ++i) {
        IntervalRecord rec;
        rec.cpi = 0.75 + 0.25 * i;
        rec.insts = 1000;
        rec.accumTotal = 500 + i;
        rec.accums = {std::vector<std::uint32_t>(4, 100u + i),
                      std::vector<std::uint32_t>(8, 50u + i)};
        p.push(std::move(rec));
    }
    return p;
}

void
expectProfilesEqual(const IntervalProfile &a,
                    const IntervalProfile &b)
{
    EXPECT_EQ(a.workload(), b.workload());
    EXPECT_EQ(a.coreName(), b.coreName());
    EXPECT_EQ(a.intervalLength(), b.intervalLength());
    EXPECT_EQ(a.machineHash(), b.machineHash());
    EXPECT_EQ(a.dims(), b.dims());
    ASSERT_EQ(a.numIntervals(), b.numIntervals());
    for (std::size_t i = 0; i < a.numIntervals(); ++i) {
        EXPECT_EQ(a.interval(i).cpi, b.interval(i).cpi);
        EXPECT_EQ(a.interval(i).insts, b.interval(i).insts);
        EXPECT_EQ(a.interval(i).accumTotal,
                  b.interval(i).accumTotal);
        EXPECT_EQ(a.interval(i).accums, b.interval(i).accums);
    }
}

TEST(TraceFile, RoundTripPreservesEverything)
{
    IntervalProfile p = sampleProfile();
    std::vector<std::uint8_t> bytes = encodeTrace(p, "unit test");
    TraceData data = parseTrace(bytes, "<memory>");
    expectProfilesEqual(p, data.profile);
    EXPECT_EQ(data.source, "unit test");
    EXPECT_EQ(data.contentHash,
              fnv1a64(bytes.data(), bytes.size()));
}

TEST(TraceFile, ReExportIsByteIdentical)
{
    IntervalProfile p = sampleProfile();
    std::vector<std::uint8_t> first = encodeTrace(p, "src");
    TraceData data = parseTrace(first, "<memory>");
    std::vector<std::uint8_t> second =
        encodeTrace(data.profile, data.source);
    EXPECT_EQ(first, second);
}

TEST(TraceFile, WriteReadFileRoundTrip)
{
    const std::string path = tmpPath("roundtrip.tpcptrace");
    IntervalProfile p = sampleProfile();
    writeTrace(path, p, "file test");
    TraceData data = readTrace(path);
    expectProfilesEqual(p, data.profile);
    EXPECT_EQ(traceContentHash(path), data.contentHash);
    std::remove(path.c_str());
}

TEST(TraceFile, ContentHashIsFnv1a64)
{
    // Pinned: FNV-1a 64 of "tpcp". The hash is the trace-cache key,
    // so an accidental algorithm change must fail loudly.
    EXPECT_EQ(fnv1a64("tpcp", 4), 0x6d4c0def5ba2d76aull);
    EXPECT_EQ(fnv1a64("", 0), 0xcbf29ce484222325ull);
}

TEST(TraceFile, ContentHashTracksEveryByte)
{
    std::vector<std::uint8_t> bytes =
        encodeTrace(sampleProfile(), "h");
    const std::uint64_t base = fnv1a64(bytes.data(), bytes.size());
    for (std::size_t i = 0; i < bytes.size(); i += 7) {
        bytes[i] ^= 0x01;
        EXPECT_NE(fnv1a64(bytes.data(), bytes.size()), base)
            << "flip at byte " << i;
        bytes[i] ^= 0x01;
    }
}

TEST(TraceFile, EverySingleBitFlipIsRejected)
{
    std::vector<std::uint8_t> bytes =
        encodeTrace(sampleProfile(), "flip");
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        for (int bit = 0; bit < 8; ++bit) {
            bytes[i] ^= static_cast<std::uint8_t>(1u << bit);
            EXPECT_THROW(parseTrace(bytes, "<memory>"), Error)
                << "byte " << i << " bit " << bit;
            bytes[i] ^= static_cast<std::uint8_t>(1u << bit);
        }
    }
    // The pristine image still parses (the loop restored it).
    EXPECT_NO_THROW(parseTrace(bytes, "<memory>"));
}

TEST(TraceFile, EveryTruncationIsRejected)
{
    const std::vector<std::uint8_t> full =
        encodeTrace(sampleProfile(), "trunc");
    for (std::size_t n = 0; n < full.size(); ++n) {
        std::vector<std::uint8_t> cut(full.begin(),
                                      full.begin() + n);
        EXPECT_THROW(parseTrace(cut, "<memory>"), Error)
            << "truncated to " << n << " bytes";
    }
}

TEST(TraceFile, TrailingGarbageIsRejected)
{
    std::vector<std::uint8_t> bytes =
        encodeTrace(sampleProfile(), "tail");
    bytes.push_back(0x00);
    EXPECT_THROW(parseTrace(bytes, "<memory>"), Error);
}

TEST(TraceFile, EncodeRejectsOversizedFields)
{
    IntervalProfile p = sampleProfile();
    EXPECT_THROW(
        encodeTrace(p, std::string(kTraceMaxSource + 1, 's')),
        Error);
    IntervalProfile longname(std::string(kTraceMaxName + 1, 'n'),
                             "ooo", 1000, {4});
    EXPECT_THROW(encodeTrace(longname, ""), Error);
}

TEST(TraceFile, MissingFileRaises)
{
    EXPECT_THROW(readTrace(tmpPath("no-such-trace.tpcptrace")),
                 Error);
}

// --- checked-in corruption corpus ------------------------------

std::string
corpusDir()
{
    return std::string(TPCP_SOURCE_DIR) +
           "/tests/corpus/corruption";
}

TEST(TraceCorpus, ManifestReplay)
{
    std::ifstream mf(corpusDir() + "/MANIFEST");
    ASSERT_TRUE(mf) << "missing " << corpusDir() << "/MANIFEST";
    std::string line;
    std::size_t entries = 0, expect_ok = 0;
    while (std::getline(mf, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string file, expect;
        ASSERT_TRUE(ls >> file >> expect) << line;
        ++entries;
        const std::string path = corpusDir() + "/" + file;
        if (expect == "ok") {
            ++expect_ok;
            TraceData data;
            EXPECT_NO_THROW(data = readTrace(path)) << file;
            EXPECT_GT(data.profile.numIntervals(), 0u) << file;
        } else {
            ASSERT_EQ(expect, "fail") << line;
            EXPECT_THROW(readTrace(path), Error) << file;
        }
    }
    // The corpus covers the corruption classes the format must
    // reject; a shrunken manifest means lost coverage.
    EXPECT_GE(entries, 12u);
    EXPECT_GE(expect_ok, 1u);
}

TEST(TraceCorpus, SeedFileParsesToExpectedShape)
{
    TraceData data =
        readTrace(corpusDir() + "/seed.tpcptrace");
    EXPECT_EQ(data.profile.workload(), "adv:phase-alias/s7");
    EXPECT_EQ(data.profile.numIntervals(), 40u);
    EXPECT_EQ(data.source, "corruption-corpus seed");
}

} // namespace
