/**
 * @file
 * Deterministic corruption corpus for the .tpcpprof loader: every
 * single-bit flip, every truncation, and a forged record count must
 * either fail the load cleanly or yield a structurally consistent
 * profile — never crash, over-allocate, or return torn data. Runs
 * under the ASan CI job like every other test.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "trace/interval_profile.hh"

using namespace tpcp;
using namespace tpcp::trace;

namespace
{

std::string
tmpPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

/** A small but fully populated profile: two dimension configs and a
 * handful of records keep the corpus loop fast (~2 x file size loads)
 * while covering every field of the format. */
IntervalProfile
sampleProfile()
{
    IntervalProfile p("w", "ooo", 1000, {4, 8});
    p.setMachineHash(0x1234abcd5678ef00ull);
    for (int i = 0; i < 3; ++i) {
        IntervalRecord rec;
        rec.cpi = 1.0 + 0.25 * i;
        rec.insts = 1000;
        rec.accumTotal = 500 + i;
        rec.accums = {std::vector<std::uint32_t>(4, 100u + i),
                      std::vector<std::uint32_t>(8, 50u + i)};
        p.push(std::move(rec));
    }
    return p;
}

std::vector<std::uint8_t>
readFileBytes(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::vector<std::uint8_t> bytes;
    int c;
    while ((c = std::fgetc(f)) != EOF)
        bytes.push_back(static_cast<std::uint8_t>(c));
    std::fclose(f);
    return bytes;
}

void
writeFileBytes(const std::string &path,
               const std::vector<std::uint8_t> &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
              bytes.size());
    std::fclose(f);
}

/** Whatever the loader accepted must at least be self-consistent:
 * record shapes match the declared dimension configs. The format has
 * no checksum (flips inside CPI payloads are legitimately invisible),
 * so structural consistency is the contract. */
void
expectConsistent(const IntervalProfile &p)
{
    for (std::size_t i = 0; i < p.numIntervals(); ++i) {
        const IntervalRecord &rec = p.interval(i);
        ASSERT_EQ(rec.accums.size(), p.dims().size());
        for (std::size_t d = 0; d < p.dims().size(); ++d)
            ASSERT_EQ(rec.accums[d].size(), p.dims()[d]);
    }
}

} // namespace

TEST(ProfileCorruption, EverySingleBitFlipLoadsCleanlyOrFails)
{
    const std::string path = tmpPath("corpus_flip.tpcpprof");
    ASSERT_TRUE(sampleProfile().save(path));
    const std::vector<std::uint8_t> clean = readFileBytes(path);
    ASSERT_GT(clean.size(), 50u);

    for (std::size_t i = 0; i < clean.size(); ++i) {
        for (std::uint8_t mask : {0x01, 0x80}) {
            std::vector<std::uint8_t> bad = clean;
            bad[i] = static_cast<std::uint8_t>(bad[i] ^ mask);
            writeFileBytes(path, bad);
            IntervalProfile q;
            if (q.load(path)) {
                expectConsistent(q);
            } else {
                EXPECT_EQ(q.numIntervals(), 0u)
                    << "failed load left partial data (byte " << i
                    << ")";
            }
        }
    }
    std::remove(path.c_str());
}

TEST(ProfileCorruption, EveryTruncationFailsCleanly)
{
    const std::string path = tmpPath("corpus_trunc.tpcpprof");
    ASSERT_TRUE(sampleProfile().save(path));
    const std::vector<std::uint8_t> clean = readFileBytes(path);

    for (std::size_t len = 0; len < clean.size(); ++len) {
        writeFileBytes(path, {clean.begin(), clean.begin() + len});
        IntervalProfile q;
        EXPECT_FALSE(q.load(path))
            << "truncation to " << len << " bytes accepted";
        EXPECT_EQ(q.numIntervals(), 0u);
    }
    std::remove(path.c_str());
}

TEST(ProfileCorruption, TrailingGarbageRejected)
{
    const std::string path = tmpPath("corpus_trailing.tpcpprof");
    ASSERT_TRUE(sampleProfile().save(path));
    std::vector<std::uint8_t> bytes = readFileBytes(path);
    bytes.push_back(0);
    writeFileBytes(path, bytes);
    IntervalProfile q;
    EXPECT_FALSE(q.load(path));
    EXPECT_EQ(q.numIntervals(), 0u);
}

TEST(ProfileCorruption, ForgedRecordCountDoesNotAllocate)
{
    // Regression: a corrupted record count used to drive
    // records.resize() straight into a multi-gigabyte allocation. The
    // loader now bounds the count by the remaining file length before
    // allocating anything.
    const std::string path = tmpPath("corpus_count.tpcpprof");
    IntervalProfile p = sampleProfile();
    ASSERT_TRUE(p.save(path));
    std::vector<std::uint8_t> bytes = readFileBytes(path);

    // Offset of the u64 record count, mirroring the writer: magic,
    // version, two length-prefixed strings, interval, machine hash,
    // dimension count, one u32 per dimension config.
    std::size_t off = 4 + 4 + (4 + p.workload().size()) +
                      (4 + p.coreName().size()) + 8 + 8 + 4 +
                      4 * p.dims().size();
    ASSERT_LE(off + 8, bytes.size());
    const std::uint64_t forged = (1ull << 32); // passes the old cap
    std::memcpy(&bytes[off], &forged, sizeof(forged));
    writeFileBytes(path, bytes);

    IntervalProfile q;
    EXPECT_FALSE(q.load(path));
    EXPECT_EQ(q.numIntervals(), 0u);
    std::remove(path.c_str());
}
