/**
 * @file
 * Tests that the Table-1 machine description matches the paper.
 */

#include <gtest/gtest.h>

#include "uarch/machine_config.hh"

using namespace tpcp::uarch;

TEST(MachineConfig, Table1Caches)
{
    MachineConfig m = MachineConfig::table1();
    EXPECT_EQ(m.icache.sizeBytes, 16u * 1024);
    EXPECT_EQ(m.icache.assoc, 4u);
    EXPECT_EQ(m.icache.blockBytes, 32u);
    EXPECT_EQ(m.icache.hitLatency, 1u);
    EXPECT_EQ(m.dcache.sizeBytes, 16u * 1024);
    EXPECT_EQ(m.l2.sizeBytes, 128u * 1024);
    EXPECT_EQ(m.l2.assoc, 8u);
    EXPECT_EQ(m.l2.blockBytes, 64u);
    EXPECT_EQ(m.l2.hitLatency, 12u);
    EXPECT_EQ(m.memoryLatency, 120u);
}

TEST(MachineConfig, Table1BranchPredictor)
{
    MachineConfig m = MachineConfig::table1();
    EXPECT_EQ(m.branchPred.gshareHistoryBits, 8u);
    EXPECT_EQ(m.branchPred.gshareEntries, 2048u);
    EXPECT_EQ(m.branchPred.bimodalEntries, 8192u);
}

TEST(MachineConfig, Table1Core)
{
    MachineConfig m = MachineConfig::table1();
    EXPECT_EQ(m.core.issueWidth, 4u);
    EXPECT_EQ(m.core.robEntries, 64u);
    EXPECT_EQ(m.core.intAluUnits, 2u);
    EXPECT_EQ(m.core.loadStoreUnits, 2u);
    EXPECT_EQ(m.core.fpAddUnits, 1u);
    EXPECT_EQ(m.core.intMultDivUnits, 1u);
    EXPECT_EQ(m.core.fpMultDivUnits, 1u);
}

TEST(MachineConfig, Table1VirtualMemory)
{
    MachineConfig m = MachineConfig::table1();
    EXPECT_EQ(m.dtlb.pageBytes, 8u * 1024);
    EXPECT_EQ(m.dtlb.missLatency, 30u);
    EXPECT_EQ(m.itlb.missLatency, 30u);
}

TEST(MachineConfig, ToStringMentionsKeyParameters)
{
    std::string s = MachineConfig::table1().toString();
    EXPECT_NE(s.find("16k 4-way"), std::string::npos);
    EXPECT_NE(s.find("120 cycle"), std::string::npos);
    EXPECT_NE(s.find("64 entry re-order buffer"), std::string::npos);
    EXPECT_NE(s.find("30 cycle fixed TLB"), std::string::npos);
}

TEST(MachineConfig, HalvedCacheHalvesSizeKeepsGeometryLegal)
{
    CacheConfig base = MachineConfig::table1().dcache;
    CacheConfig half = halvedCache(base);
    EXPECT_EQ(half.sizeBytes, base.sizeBytes / 2);
    EXPECT_EQ(half.blockBytes, base.blockBytes);
    EXPECT_GE(half.numSets(), 1u);
    MachineConfig was = MachineConfig::table1();
    MachineConfig now = was;
    now.dcache = half;
    EXPECT_NE(configHash(now), configHash(was));
}

TEST(MachineConfig, HalvedCacheBottomsOutAtOneSetDirectMapped)
{
    CacheConfig c = MachineConfig::table1().dcache;
    for (int i = 0; i < 32; ++i)
        c = halvedCache(c);
    EXPECT_GE(c.sizeBytes, c.blockBytes);
    EXPECT_GE(c.assoc, 1u);
    EXPECT_GE(c.numSets(), 1u);
}

TEST(MachineConfig, NarrowedCoreHalvesWidthsWithFloors)
{
    CoreConfig base = MachineConfig::table1().core;
    CoreConfig narrow = narrowedCore(base);
    EXPECT_EQ(narrow.issueWidth, base.issueWidth / 2);
    EXPECT_EQ(narrow.fetchWidth, base.fetchWidth / 2);
    EXPECT_EQ(narrow.commitWidth, base.commitWidth / 2);
    EXPECT_EQ(narrow.robEntries, base.robEntries / 2);
    EXPECT_EQ(narrow.lsqEntries, base.lsqEntries / 2);

    CoreConfig floor = base;
    for (int i = 0; i < 32; ++i)
        floor = narrowedCore(floor);
    EXPECT_EQ(floor.issueWidth, 1u);
    EXPECT_GE(floor.robEntries, 4u);
    EXPECT_GE(floor.lsqEntries, 2u);
}
