/**
 * @file
 * Tests for the simulation driver: schedule execution, sink fan-out,
 * instruction budgets and region switching.
 */

#include <gtest/gtest.h>

#include <vector>

#include "../test_helpers.hh"
#include "uarch/ooo_core.hh"
#include "uarch/simulator.hh"

using namespace tpcp;
using namespace tpcp::uarch;

namespace
{

/** Records every committed instruction's region. */
class RecordingSink : public TraceSink
{
  public:
    void
    onCommit(const DynInst &inst) override
    {
        regions.push_back(inst.region);
    }

    void onFinish() override { finished = true; }

    std::vector<std::uint32_t> regions;
    bool finished = false;
};

} // namespace

TEST(Simulator, RunsScheduleToCompletion)
{
    isa::Program p = test::twoRegionProgram();
    auto sched = test::fixedSchedule({{0, 100}, {1, 50}});
    OooCore core(MachineConfig::table1());
    Simulator sim(p, sched, core, 1);
    RecordingSink sink;
    sim.addSink(&sink);

    InstCount done = sim.run();
    EXPECT_EQ(done, 150u);
    EXPECT_TRUE(sink.finished);
    ASSERT_EQ(sink.regions.size(), 150u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(sink.regions[i], 0u);
    for (int i = 100; i < 150; ++i)
        EXPECT_EQ(sink.regions[i], 1u);
}

TEST(Simulator, MaxInstsTruncates)
{
    isa::Program p = test::twoRegionProgram();
    auto sched = test::fixedSchedule({{0, 1000}});
    OooCore core(MachineConfig::table1());
    Simulator sim(p, sched, core, 1);
    RecordingSink sink;
    sim.addSink(&sink);
    EXPECT_EQ(sim.run(123), 123u);
    EXPECT_TRUE(sink.finished);
}

TEST(Simulator, MultipleSinksAllSeeStream)
{
    isa::Program p = test::loopProgram();
    auto sched = test::fixedSchedule({{0, 64}});
    OooCore core(MachineConfig::table1());
    Simulator sim(p, sched, core, 1);
    RecordingSink a, b;
    sim.addSink(&a);
    sim.addSink(&b);
    sim.run();
    EXPECT_EQ(a.regions.size(), 64u);
    EXPECT_EQ(b.regions.size(), 64u);
}

TEST(Simulator, ZeroLengthSegmentsSkipped)
{
    isa::Program p = test::twoRegionProgram();
    auto sched = test::fixedSchedule({{0, 10}, {1, 0}, {1, 10}});
    OooCore core(MachineConfig::table1());
    Simulator sim(p, sched, core, 1);
    EXPECT_EQ(sim.run(), 20u);
}

TEST(Simulator, BackToBackSameRegionKeepsPosition)
{
    // Two adjacent segments of the same region must not restart the
    // region (enterRegion only on change).
    isa::Program p = test::loopProgram(3, 100, 0x1000);
    auto sched = test::fixedSchedule({{0, 6}, {0, 6}});
    OooCore core(MachineConfig::table1());
    Simulator sim(p, sched, core, 1);

    class PcSink : public TraceSink
    {
      public:
        void
        onCommit(const DynInst &inst) override
        {
            pcs.push_back(inst.pc);
        }
        std::vector<Addr> pcs;
    } sink;
    sim.addSink(&sink);
    sim.run();
    // Block is 4 insts; continuous execution means pc sequence never
    // resets mid-block at the segment boundary.
    ASSERT_EQ(sink.pcs.size(), 12u);
    EXPECT_EQ(sink.pcs[6], 0x1008u)
        << "position carried across segments";
}

TEST(Simulator, CoreAccumulatesCycles)
{
    isa::Program p = test::loopProgram();
    auto sched = test::fixedSchedule({{0, 1000}});
    OooCore core(MachineConfig::table1());
    Simulator sim(p, sched, core, 1);
    sim.run();
    EXPECT_GT(core.cycles(), 0u);
    EXPECT_EQ(core.stats().insts, 1000u);
}
