/**
 * @file
 * Unit tests for the direction predictors (bimodal, gshare, Table-1
 * hybrid): learning behavior on canonical branch patterns.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "uarch/branch_pred.hh"

using namespace tpcp;
using namespace tpcp::uarch;

TEST(Bimodal, LearnsBias)
{
    BimodalPredictor p(1024);
    Addr pc = 0x4000;
    for (int i = 0; i < 8; ++i)
        p.predictAndTrain(pc, true);
    EXPECT_TRUE(p.predict(pc));
    for (int i = 0; i < 8; ++i)
        p.predictAndTrain(pc, false);
    EXPECT_FALSE(p.predict(pc));
}

TEST(Bimodal, HysteresisSurvivesOneFlip)
{
    BimodalPredictor p(1024);
    Addr pc = 0x4000;
    for (int i = 0; i < 8; ++i)
        p.predictAndTrain(pc, true);
    p.predictAndTrain(pc, false); // one not-taken
    EXPECT_TRUE(p.predict(pc)) << "2-bit counter keeps predicting taken";
}

TEST(Bimodal, MostlyTakenAccuracy)
{
    BimodalPredictor p(8192);
    Rng rng(std::uint64_t{3});
    Addr pc = 0x4000;
    int wrong = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        wrong += p.predictAndTrain(pc, rng.nextBool(0.9)) ? 1 : 0;
    // Always-predict-taken on a 90% taken branch: ~10% wrong.
    EXPECT_LT(static_cast<double>(wrong) / n, 0.15);
}

TEST(Gshare, LearnsAlternatingPattern)
{
    // Bimodal cannot learn T,N,T,N...; gshare can via history.
    GsharePredictor g(2048, 8);
    BimodalPredictor b(2048);
    Addr pc = 0x4000;
    int g_wrong = 0, b_wrong = 0;
    for (int i = 0; i < 2000; ++i) {
        bool taken = (i % 2) == 0;
        g_wrong += g.predictAndTrain(pc, taken) ? 1 : 0;
        b_wrong += b.predictAndTrain(pc, taken) ? 1 : 0;
    }
    EXPECT_LT(g_wrong, 100) << "gshare locks onto the pattern";
    EXPECT_GT(b_wrong, 500) << "bimodal cannot";
}

TEST(Gshare, LearnsShortLoopPattern)
{
    GsharePredictor g(2048, 8);
    Addr pc = 0x4000;
    int wrong = 0;
    const int iters = 3000;
    for (int i = 0; i < iters; ++i) {
        bool taken = (i % 5) != 4; // 5-iteration loop branch
        wrong += g.predictAndTrain(pc, taken) ? 1 : 0;
    }
    EXPECT_LT(static_cast<double>(wrong) / iters, 0.05);
}

TEST(Hybrid, BeatsOrMatchesComponentsOnMixedWorkload)
{
    BranchPredConfig cfg;
    HybridPredictor h(cfg);
    GsharePredictor g(cfg.gshareEntries, cfg.gshareHistoryBits);
    BimodalPredictor b(cfg.bimodalEntries);

    Rng rng(std::uint64_t{17});
    int h_wrong = 0, g_wrong = 0, b_wrong = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        // Two branch populations: a patterned branch and a biased
        // branch, interleaved.
        Addr pc = (i % 2) ? 0x1000 : 0x2000;
        bool taken = (i % 2) ? ((i / 2) % 3 != 2)
                             : rng.nextBool(0.85);
        h_wrong += h.predictAndTrain(pc, taken) ? 1 : 0;
        g_wrong += g.predictAndTrain(pc, taken) ? 1 : 0;
        b_wrong += b.predictAndTrain(pc, taken) ? 1 : 0;
    }
    EXPECT_LE(h_wrong, g_wrong + n / 50);
    EXPECT_LE(h_wrong, b_wrong + n / 50);
}

TEST(Hybrid, RandomBranchNearFiftyPercent)
{
    HybridPredictor h(BranchPredConfig{});
    Rng rng(std::uint64_t{23});
    int wrong = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        wrong += h.predictAndTrain(0x4000, rng.nextBool(0.5)) ? 1 : 0;
    double rate = static_cast<double>(wrong) / n;
    EXPECT_GT(rate, 0.4);
    EXPECT_LT(rate, 0.6);
}

TEST(Hybrid, StatsTracked)
{
    HybridPredictor h(BranchPredConfig{});
    for (int i = 0; i < 10; ++i)
        h.predictAndTrain(0x4000, true);
    EXPECT_EQ(h.stats().lookups, 10u);
    EXPECT_LE(h.stats().mispredicts, 10u);
}

TEST(Hybrid, ResetClearsState)
{
    HybridPredictor h(BranchPredConfig{});
    for (int i = 0; i < 100; ++i)
        h.predictAndTrain(0x4000, false);
    h.reset();
    EXPECT_EQ(h.stats().lookups, 0u);
    // After reset, weakly-taken initialization predicts taken.
    EXPECT_TRUE(h.predict(0x4000));
}
