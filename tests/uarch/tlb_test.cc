/**
 * @file
 * Unit tests for the TLB model (8K pages, fixed miss latency).
 */

#include <gtest/gtest.h>

#include "uarch/tlb.hh"

using namespace tpcp;
using namespace tpcp::uarch;

namespace
{

TlbConfig
smallTlb()
{
    TlbConfig c;
    c.pageBytes = 8 * 1024;
    c.entries = 8;
    c.assoc = 2;
    c.missLatency = 30;
    return c;
}

} // namespace

TEST(Tlb, ColdMissThenHit)
{
    Tlb t(smallTlb());
    EXPECT_FALSE(t.access(0x10000));
    EXPECT_TRUE(t.access(0x10000));
    EXPECT_TRUE(t.access(0x10000 + 8191)) << "same 8K page";
    EXPECT_FALSE(t.access(0x10000 + 8192)) << "next page";
}

TEST(Tlb, MissLatencyFromConfig)
{
    Tlb t(smallTlb());
    EXPECT_EQ(t.missLatency(), 30u);
}

TEST(Tlb, CapacityEviction)
{
    Tlb t(smallTlb());
    // 8 entries, 2-way, 4 sets. Pages p, p+4sets, p+8sets map to the
    // same set; the third insert evicts the LRU.
    Addr base = 0;
    Addr stride = 4 * 8192; // same-set stride
    t.access(base);
    t.access(base + stride);
    t.access(base); // touch first
    t.access(base + 2 * stride); // evicts base+stride
    EXPECT_TRUE(t.access(base));
    EXPECT_FALSE(t.access(base + stride));
}

TEST(Tlb, StatsAndReset)
{
    Tlb t(smallTlb());
    t.access(0);
    t.access(0);
    EXPECT_EQ(t.stats().accesses, 2u);
    EXPECT_EQ(t.stats().misses, 1u);
    EXPECT_DOUBLE_EQ(t.stats().missRate(), 0.5);
    t.reset();
    EXPECT_EQ(t.stats().accesses, 0u);
    EXPECT_FALSE(t.access(0));
}

TEST(Tlb, LargeWorkingSetMissesOften)
{
    Tlb t(smallTlb()); // covers 64K
    std::uint64_t misses_before = t.stats().misses;
    // Touch 64 distinct pages repeatedly (512K footprint).
    for (int pass = 0; pass < 3; ++pass) {
        for (Addr p = 0; p < 64; ++p)
            t.access(p * 8192);
    }
    EXPECT_GT(t.stats().misses - misses_before, 100u);
}
