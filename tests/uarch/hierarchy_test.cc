/**
 * @file
 * Unit tests for the two-level cache hierarchy: latency composition
 * across L1/L2/memory and TLB penalties (Table-1 latencies).
 */

#include <gtest/gtest.h>

#include "uarch/cache_hierarchy.hh"
#include "uarch/machine_config.hh"

using namespace tpcp;
using namespace tpcp::uarch;

namespace
{

MachineConfig
table1()
{
    return MachineConfig::table1();
}

} // namespace

TEST(CacheHierarchy, L1HitIsOneCycle)
{
    CacheHierarchy h(table1());
    h.accessData(0x1000, false); // warm (pays TLB + misses)
    EXPECT_EQ(h.accessData(0x1000, false), 1u);
}

TEST(CacheHierarchy, ColdDataMissPaysFullPath)
{
    CacheHierarchy h(table1());
    // Cold: L1 miss + L2 miss + memory + TLB miss.
    Cycles lat = h.accessData(0x100000, false);
    EXPECT_EQ(lat, 1u + 12u + 120u + 30u);
}

TEST(CacheHierarchy, L2HitAfterL1Eviction)
{
    CacheHierarchy h(table1());
    Addr a = 0x0;
    h.accessData(a, false); // cold fill of L1+L2
    // Evict 'a' from the 16K 4-way L1 by touching 5 conflicting
    // blocks (stride = number of sets * block size = 4096).
    for (int i = 1; i <= 5; ++i)
        h.accessData(a + i * 4096ull, false);
    // 'a' should now be an L1 miss but (128K 8-way) L2 hit; the page
    // is still in the TLB.
    Cycles lat = h.accessData(a, false);
    EXPECT_EQ(lat, 1u + 12u);
}

TEST(CacheHierarchy, InstAndDataCachesSplit)
{
    CacheHierarchy h(table1());
    h.accessInst(0x4000);
    // The same address via the data path still misses L1D (split
    // caches) but hits the unified L2.
    Cycles lat = h.accessData(0x4000, false);
    EXPECT_EQ(lat, 1u + 12u + 30u)
        << "L1D miss + L2 hit + D-TLB miss";
}

TEST(CacheHierarchy, InstFetchColdPath)
{
    CacheHierarchy h(table1());
    Cycles lat = h.accessInst(0x400000);
    EXPECT_EQ(lat, 1u + 12u + 120u + 30u);
    EXPECT_EQ(h.accessInst(0x400000), 1u);
}

TEST(CacheHierarchy, StatsVisible)
{
    CacheHierarchy h(table1());
    h.accessData(0x0, false);
    h.accessData(0x0, true);
    EXPECT_EQ(h.dcache().stats().accesses, 2u);
    EXPECT_EQ(h.dcache().stats().misses, 1u);
    EXPECT_EQ(h.l2cache().stats().accesses, 1u);
}

TEST(CacheHierarchy, ResetRestoresCold)
{
    CacheHierarchy h(table1());
    h.accessData(0x0, false);
    h.reset();
    EXPECT_EQ(h.accessData(0x0, false), 1u + 12u + 120u + 30u);
}
