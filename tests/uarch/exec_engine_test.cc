/**
 * @file
 * Unit tests for the execution engine: control flow, branch behavior
 * resolution, memory-address generation and region switching.
 */

#include <gtest/gtest.h>

#include <set>

#include "../test_helpers.hh"
#include "uarch/exec_engine.hh"

using namespace tpcp;
using namespace tpcp::uarch;

TEST(ExecEngine, LoopBackTripCount)
{
    // Trip 4: the branch is taken 3 times, then not-taken, repeat.
    isa::Program p = test::loopProgram(2, 4);
    ExecEngine eng(p, 1);
    std::vector<bool> outcomes;
    for (int i = 0; i < 24; ++i) {
        const DynInst &d = eng.next();
        if (d.isControl())
            outcomes.push_back(d.taken);
    }
    ASSERT_EQ(outcomes.size(), 8u);
    for (std::size_t i = 0; i < outcomes.size(); ++i)
        EXPECT_EQ(outcomes[i], (i % 4) != 3) << "at branch " << i;
}

TEST(ExecEngine, PcSequenceWithinBlock)
{
    isa::Program p = test::loopProgram(3, 2, 0x1000);
    ExecEngine eng(p, 1);
    EXPECT_EQ(eng.next().pc, 0x1000u);
    EXPECT_EQ(eng.next().pc, 0x1004u);
    EXPECT_EQ(eng.next().pc, 0x1008u);
    EXPECT_EQ(eng.next().pc, 0x100cu); // the branch
    EXPECT_EQ(eng.next().pc, 0x1000u) << "wrapped to block start";
}

TEST(ExecEngine, InstCountAdvances)
{
    isa::Program p = test::loopProgram();
    ExecEngine eng(p, 1);
    for (int i = 0; i < 10; ++i)
        eng.next();
    EXPECT_EQ(eng.instCount(), 10u);
}

TEST(ExecEngine, EnterRegionSwitchesPc)
{
    isa::Program p = test::twoRegionProgram();
    ExecEngine eng(p, 1);
    EXPECT_EQ(eng.currentRegion(), 0u);
    EXPECT_EQ(eng.next().region, 0u);
    eng.enterRegion(1);
    EXPECT_EQ(eng.currentRegion(), 1u);
    const DynInst &d = eng.next();
    EXPECT_EQ(d.region, 1u);
    EXPECT_EQ(d.pc, 0x8000u) << "execution restarts at region entry";
}

TEST(ExecEngine, DeterministicForSameSeed)
{
    isa::Program p = test::loopProgram();
    ExecEngine a(p, 42), b(p, 42);
    for (int i = 0; i < 100; ++i) {
        const DynInst &da = a.next();
        const DynInst &db = b.next();
        EXPECT_EQ(da.pc, db.pc);
        EXPECT_EQ(da.taken, db.taken);
        EXPECT_EQ(da.memAddr, db.memAddr);
    }
}

namespace
{

/** One-block program with a single memory instruction per stream
 * kind. */
isa::Program
memProgram(isa::MemStreamDesc::Kind kind, std::uint64_t ws,
           std::int64_t stride = 8)
{
    isa::Program p = test::loopProgram(1, 2);
    isa::MemStreamDesc desc;
    desc.kind = kind;
    desc.base = 0x100000;
    desc.workingSetBytes = ws;
    desc.strideBytes = stride;
    p.regions[0].memStreams.push_back(desc);
    isa::Inst load;
    load.op = isa::OpClass::Load;
    load.dest = 1;
    load.stream = 0;
    p.blocks[0].insts.insert(p.blocks[0].insts.begin(), load);
    return p;
}

} // namespace

TEST(ExecEngine, StrideStreamWalksAndWraps)
{
    isa::Program p =
        memProgram(isa::MemStreamDesc::Kind::Stride, 32, 8);
    ExecEngine eng(p, 1);
    std::vector<Addr> addrs;
    for (int i = 0; i < 18; ++i) {
        const DynInst &d = eng.next();
        if (d.isMem())
            addrs.push_back(d.memAddr);
    }
    ASSERT_GE(addrs.size(), 6u);
    EXPECT_EQ(addrs[0], 0x100000u);
    EXPECT_EQ(addrs[1], 0x100008u);
    EXPECT_EQ(addrs[2], 0x100010u);
    EXPECT_EQ(addrs[3], 0x100018u);
    EXPECT_EQ(addrs[4], 0x100000u) << "wrapped at working set";
}

TEST(ExecEngine, NegativeStrideWraps)
{
    isa::Program p =
        memProgram(isa::MemStreamDesc::Kind::Stride, 32, -8);
    ExecEngine eng(p, 1);
    std::vector<Addr> addrs;
    for (int i = 0; i < 12; ++i) {
        const DynInst &d = eng.next();
        if (d.isMem())
            addrs.push_back(d.memAddr);
    }
    ASSERT_GE(addrs.size(), 3u);
    EXPECT_EQ(addrs[0], 0x100000u);
    EXPECT_EQ(addrs[1], 0x100018u) << "wrapped backwards into set";
    EXPECT_EQ(addrs[2], 0x100010u);
}

TEST(ExecEngine, RandomStreamStaysInWorkingSet)
{
    isa::Program p =
        memProgram(isa::MemStreamDesc::Kind::RandomInSet, 4096);
    ExecEngine eng(p, 7);
    for (int i = 0; i < 300; ++i) {
        const DynInst &d = eng.next();
        if (d.isMem()) {
            EXPECT_GE(d.memAddr, 0x100000u);
            EXPECT_LT(d.memAddr, 0x100000u + 4096u);
            EXPECT_EQ(d.memAddr % 8, 0u) << "word aligned";
        }
    }
}

TEST(ExecEngine, PointerChaseIsDeterministicWalk)
{
    isa::Program p =
        memProgram(isa::MemStreamDesc::Kind::PointerChase, 4096);
    ExecEngine a(p, 3), b(p, 99);
    std::vector<Addr> addrs_a, addrs_b;
    for (int i = 0; i < 60; ++i) {
        const DynInst &da = a.next();
        if (da.isMem())
            addrs_a.push_back(da.memAddr);
        const DynInst &db = b.next();
        if (db.isMem())
            addrs_b.push_back(db.memAddr);
    }
    // The chase sequence is a hash walk independent of the RNG seed
    // (it models data-dependent addresses).
    EXPECT_EQ(addrs_a, addrs_b);
    // It should visit many distinct addresses within the set.
    std::set<Addr> distinct(addrs_a.begin(), addrs_a.end());
    EXPECT_GT(distinct.size(), addrs_a.size() / 2);
    for (Addr x : addrs_a) {
        EXPECT_GE(x, 0x100000u);
        EXPECT_LT(x, 0x100000u + 4096u);
    }
}

TEST(ExecEngine, BernoulliBranchRoughlyMatchesProbability)
{
    isa::Program p = test::loopProgram(1, 2);
    isa::BranchBehaviorDesc bern;
    bern.kind = isa::BranchBehaviorDesc::Kind::Bernoulli;
    bern.takenProb = 0.8;
    p.regions[0].branchBehaviors[0] = bern;
    ExecEngine eng(p, 5);
    int taken = 0, total = 0;
    for (int i = 0; i < 6000; ++i) {
        const DynInst &d = eng.next();
        if (d.isControl()) {
            ++total;
            taken += d.taken ? 1 : 0;
        }
    }
    ASSERT_GT(total, 1000);
    EXPECT_NEAR(static_cast<double>(taken) / total, 0.8, 0.05);
}

TEST(ExecEngine, PatternBranchRepeats)
{
    isa::Program p = test::loopProgram(1, 2);
    isa::BranchBehaviorDesc pat;
    pat.kind = isa::BranchBehaviorDesc::Kind::Pattern;
    pat.patternBits = 0b011; // T,T,N repeating (LSB first)
    pat.patternLen = 3;
    p.regions[0].branchBehaviors[0] = pat;
    ExecEngine eng(p, 5);
    std::vector<bool> outcomes;
    for (int i = 0; i < 30; ++i) {
        const DynInst &d = eng.next();
        if (d.isControl())
            outcomes.push_back(d.taken);
    }
    for (std::size_t i = 0; i + 3 < outcomes.size(); i += 3) {
        EXPECT_TRUE(outcomes[i]);
        EXPECT_TRUE(outcomes[i + 1]);
        EXPECT_FALSE(outcomes[i + 2]);
    }
}
