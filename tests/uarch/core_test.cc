/**
 * @file
 * Tests for the timing cores: IPC limits, dependence serialization,
 * memory and branch penalties, and OoO-vs-simple relationships.
 */

#include <gtest/gtest.h>

#include <memory>

#include "../test_helpers.hh"
#include "uarch/exec_engine.hh"
#include "uarch/ooo_core.hh"
#include "uarch/simple_core.hh"
#include "uarch/stats_report.hh"

using namespace tpcp;
using namespace tpcp::uarch;

namespace
{

/** Runs @p n instructions of @p prog on @p core; returns CPI. */
double
runCpi(TimingCore &core, const isa::Program &prog, InstCount n,
       std::uint64_t seed = 1)
{
    ExecEngine eng(prog, seed);
    for (InstCount i = 0; i < n; ++i)
        core.consume(eng.next());
    return static_cast<double>(core.cycles()) /
           static_cast<double>(n);
}

/** An independent-ALU program (wide ILP, tiny loop). */
isa::Program
independentAluProgram()
{
    isa::Program p = test::loopProgram(15, 64);
    // Make all ALU ops independent (distinct dests, no sources).
    for (std::size_t i = 0; i + 1 < p.blocks[0].insts.size(); ++i) {
        auto &inst = p.blocks[0].insts[i];
        inst.dest = static_cast<isa::RegIndex>(i % 24);
        inst.src1 = isa::noReg;
        inst.src2 = isa::noReg;
    }
    return p;
}

/** A serial dependence chain: each op reads the previous result. */
isa::Program
serialChainProgram()
{
    isa::Program p = test::loopProgram(15, 64);
    for (std::size_t i = 0; i + 1 < p.blocks[0].insts.size(); ++i) {
        auto &inst = p.blocks[0].insts[i];
        inst.dest = 1;
        inst.src1 = 1;
        inst.src2 = isa::noReg;
    }
    return p;
}

} // namespace

TEST(OooCore, IndependentAluApproachesIssueWidth)
{
    OooCore core(MachineConfig::table1());
    double cpi = runCpi(core, independentAluProgram(), 50000);
    // 4-wide machine: CPI should approach 0.25 but branch/loop
    // overhead keeps it above.
    EXPECT_LT(cpi, 0.6);
    EXPECT_GE(cpi, 0.25);
}

TEST(OooCore, SerialChainNearOnePerCycle)
{
    OooCore core(MachineConfig::table1());
    double cpi = runCpi(core, serialChainProgram(), 50000);
    // A 1-cycle-latency serial chain commits ~1 inst/cycle.
    EXPECT_GT(cpi, 0.85);
    EXPECT_LT(cpi, 1.3);
}

TEST(OooCore, SerialSlowerThanIndependent)
{
    OooCore a(MachineConfig::table1());
    OooCore b(MachineConfig::table1());
    double ind = runCpi(a, independentAluProgram(), 50000);
    double ser = runCpi(b, serialChainProgram(), 50000);
    EXPECT_GT(ser, ind * 1.5);
}

TEST(OooCore, RandomMissesRaiseCpi)
{
    // Loads randomly touching 4MB dwarf the 128K L2.
    isa::Program p = test::loopProgram(7, 16);
    isa::MemStreamDesc desc;
    desc.kind = isa::MemStreamDesc::Kind::RandomInSet;
    desc.base = 0x1000000;
    desc.workingSetBytes = 4 * 1024 * 1024;
    p.regions[0].memStreams.push_back(desc);
    for (std::size_t i = 0; i < 3; ++i) {
        auto &inst = p.blocks[0].insts[i];
        inst.op = isa::OpClass::Load;
        inst.stream = 0;
        inst.dest = static_cast<isa::RegIndex>(i);
        inst.src1 = isa::noReg;
    }

    OooCore miss_core(MachineConfig::table1());
    double miss_cpi = runCpi(miss_core, p, 30000);
    OooCore alu_core(MachineConfig::table1());
    double alu_cpi = runCpi(alu_core, independentAluProgram(), 30000);
    EXPECT_GT(miss_cpi, 3.0 * alu_cpi)
        << "memory-bound code must be much slower";
}

TEST(OooCore, PointerChaseSlowerThanIndependentLoads)
{
    auto make = [](isa::MemStreamDesc::Kind kind) {
        isa::Program p = test::loopProgram(7, 16);
        isa::MemStreamDesc desc;
        desc.kind = kind;
        desc.base = 0x1000000;
        desc.workingSetBytes = 4 * 1024 * 1024;
        p.regions[0].memStreams.push_back(desc);
        for (std::size_t i = 0; i < 3; ++i) {
            auto &inst = p.blocks[0].insts[i];
            inst.op = isa::OpClass::Load;
            inst.stream = 0;
            if (kind == isa::MemStreamDesc::Kind::PointerChase) {
                inst.dest = 24;
                inst.src1 = 24; // serialized chain
            } else {
                inst.dest = static_cast<isa::RegIndex>(i);
                inst.src1 = isa::noReg;
            }
        }
        return p;
    };
    OooCore chase_core(MachineConfig::table1());
    OooCore rand_core(MachineConfig::table1());
    double chase =
        runCpi(chase_core,
               make(isa::MemStreamDesc::Kind::PointerChase), 20000);
    double rnd = runCpi(
        rand_core, make(isa::MemStreamDesc::Kind::RandomInSet),
        20000);
    EXPECT_GT(chase, rnd * 1.3)
        << "dependent misses cannot overlap (no MLP)";
}

TEST(OooCore, MispredictsRaiseCpi)
{
    auto make = [](double taken_prob,
                   isa::BranchBehaviorDesc::Kind kind) {
        isa::Program p = test::loopProgram(5, 2);
        isa::BranchBehaviorDesc desc;
        desc.kind = kind;
        desc.takenProb = taken_prob;
        desc.patternBits = 0b10;
        desc.patternLen = 2;
        p.regions[0].branchBehaviors[0] = desc;
        return p;
    };
    OooCore rnd_core(MachineConfig::table1());
    OooCore pat_core(MachineConfig::table1());
    double rnd = runCpi(
        rnd_core,
        make(0.5, isa::BranchBehaviorDesc::Kind::Bernoulli), 40000);
    double pat = runCpi(
        pat_core, make(0.5, isa::BranchBehaviorDesc::Kind::Pattern),
        40000);
    EXPECT_GT(rnd, pat * 1.3)
        << "random branches must cost more than a learnable pattern";
    EXPECT_GT(rnd_core.stats().branchMispredicts * 3,
              rnd_core.stats().branches)
        << "~50% mispredicts on a coin-flip branch";
    EXPECT_LT(pat_core.stats().branchMispredicts * 10,
              pat_core.stats().branches)
        << "pattern branch largely predicted";
}

TEST(OooCore, StatsCountInstructionClasses)
{
    isa::Program p = test::loopProgram(3, 4);
    OooCore core(MachineConfig::table1());
    runCpi(core, p, 4000);
    EXPECT_EQ(core.stats().insts, 4000u);
    EXPECT_GT(core.stats().branches, 900u);
}

TEST(OooCore, ResetRestartsClean)
{
    isa::Program p = test::loopProgram();
    OooCore core(MachineConfig::table1());
    double cpi1 = runCpi(core, p, 10000);
    core.reset();
    EXPECT_EQ(core.cycles(), 0u);
    EXPECT_EQ(core.stats().insts, 0u);
    double cpi2 = runCpi(core, p, 10000);
    EXPECT_NEAR(cpi1, cpi2, 0.02) << "reset is complete";
}

TEST(OooCore, CyclesMonotonic)
{
    isa::Program p = test::loopProgram();
    OooCore core(MachineConfig::table1());
    ExecEngine eng(p, 1);
    Cycles prev = 0;
    for (int i = 0; i < 2000; ++i) {
        core.consume(eng.next());
        EXPECT_GE(core.cycles(), prev);
        prev = core.cycles();
    }
}

TEST(SimpleCore, IssueWidthBound)
{
    SimpleCore core(MachineConfig::table1());
    double cpi = runCpi(core, independentAluProgram(), 40000);
    EXPECT_GE(cpi, 0.25 - 1e-9);
    EXPECT_LT(cpi, 0.6);
}

TEST(SimpleCore, MemoryPenaltiesApplied)
{
    isa::Program p = test::loopProgram(7, 16);
    isa::MemStreamDesc desc;
    desc.kind = isa::MemStreamDesc::Kind::RandomInSet;
    desc.base = 0x1000000;
    desc.workingSetBytes = 4 * 1024 * 1024;
    p.regions[0].memStreams.push_back(desc);
    auto &inst = p.blocks[0].insts[0];
    inst.op = isa::OpClass::Load;
    inst.stream = 0;

    SimpleCore core(MachineConfig::table1());
    double cpi = runCpi(core, p, 20000);
    EXPECT_GT(cpi, 5.0) << "blocking in-order core pays full misses";
}

TEST(SimpleCore, PreservesRegionOrdering)
{
    // The simple model must preserve the *relative* CPI of regions,
    // which is what the phase classifier consumes.
    isa::Program mem = test::loopProgram(7, 16);
    isa::MemStreamDesc desc;
    desc.kind = isa::MemStreamDesc::Kind::RandomInSet;
    desc.base = 0x1000000;
    desc.workingSetBytes = 4 * 1024 * 1024;
    mem.regions[0].memStreams.push_back(desc);
    mem.blocks[0].insts[0].op = isa::OpClass::Load;
    mem.blocks[0].insts[0].stream = 0;

    SimpleCore s1(MachineConfig::table1());
    SimpleCore s2(MachineConfig::table1());
    OooCore o1(MachineConfig::table1());
    OooCore o2(MachineConfig::table1());
    double s_alu = runCpi(s1, independentAluProgram(), 20000);
    double s_mem = runCpi(s2, mem, 20000);
    double o_alu = runCpi(o1, independentAluProgram(), 20000);
    double o_mem = runCpi(o2, mem, 20000);
    EXPECT_GT(s_mem, s_alu);
    EXPECT_GT(o_mem, o_alu);
}

TEST(Cores, Names)
{
    EXPECT_EQ(OooCore(MachineConfig::table1()).name(), "ooo");
    EXPECT_EQ(SimpleCore(MachineConfig::table1()).name(), "simple");
}

TEST(StatsReport, ContainsKeyStatistics)
{
    isa::Program p = test::loopProgram(7, 4);
    OooCore core(MachineConfig::table1());
    runCpi(core, p, 5000);
    std::string report = uarch::formatCoreStats(core);
    EXPECT_NE(report.find("instructions"), std::string::npos);
    EXPECT_NE(report.find("5000"), std::string::npos);
    EXPECT_NE(report.find("CPI"), std::string::npos);
    EXPECT_NE(report.find("icache"), std::string::npos);
    EXPECT_NE(report.find("dtlb miss rate"), std::string::npos);
    EXPECT_NE(report.find("mispredict rate"), std::string::npos);
}

TEST(StatsReport, WorksForBothCores)
{
    isa::Program p = test::loopProgram();
    SimpleCore simple(MachineConfig::table1());
    runCpi(simple, p, 2000);
    std::string report = uarch::formatCoreStats(simple);
    EXPECT_NE(report.find("simple"), std::string::npos);
    EXPECT_NE(report.find("l2 miss rate"), std::string::npos);
}
