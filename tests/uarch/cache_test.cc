/**
 * @file
 * Unit tests for the set-associative cache model (geometry, hit/miss
 * behavior, LRU replacement, write-back state).
 */

#include <gtest/gtest.h>

#include "uarch/cache.hh"

using namespace tpcp;
using namespace tpcp::uarch;

namespace
{

/** 2-way, 2-set, 16B-block toy cache: 64 bytes total. */
CacheConfig
toyConfig()
{
    CacheConfig c;
    c.sizeBytes = 64;
    c.assoc = 2;
    c.blockBytes = 16;
    c.hitLatency = 1;
    return c;
}

} // namespace

TEST(Cache, GeometryDerivation)
{
    Cache c(toyConfig(), "toy");
    EXPECT_EQ(c.config().numSets(), 2u);
}

TEST(Cache, Table1Geometries)
{
    CacheConfig l1{16 * 1024, 4, 32, 1};
    EXPECT_EQ(l1.numSets(), 128u);
    CacheConfig l2{128 * 1024, 8, 64, 12};
    EXPECT_EQ(l2.numSets(), 256u);
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(toyConfig(), "toy");
    EXPECT_FALSE(c.access(0x100, false).hit);
    EXPECT_TRUE(c.access(0x100, false).hit);
    EXPECT_TRUE(c.access(0x10f, false).hit) << "same 16B block";
    EXPECT_FALSE(c.access(0x110, false).hit) << "next block";
}

TEST(Cache, LruReplacementWithinSet)
{
    Cache c(toyConfig(), "toy");
    // Set 0 holds blocks whose (addr/16) is even.
    c.access(0x000, false); // A
    c.access(0x040, false); // B (same set, 2 ways full)
    c.access(0x000, false); // touch A; B is now LRU
    c.access(0x080, false); // C evicts B
    EXPECT_TRUE(c.probe(0x000));
    EXPECT_FALSE(c.probe(0x040));
    EXPECT_TRUE(c.probe(0x080));
}

TEST(Cache, SetsAreIndependent)
{
    Cache c(toyConfig(), "toy");
    c.access(0x000, false); // set 0
    c.access(0x010, false); // set 1
    EXPECT_TRUE(c.probe(0x000));
    EXPECT_TRUE(c.probe(0x010));
}

TEST(Cache, DirtyEvictionReportsWriteback)
{
    Cache c(toyConfig(), "toy");
    c.access(0x000, true); // dirty A in set 0
    c.access(0x040, false);
    c.access(0x040, false); // A is LRU
    CacheAccessResult r = c.access(0x080, false); // evicts dirty A
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, CleanEvictionNoWriteback)
{
    Cache c(toyConfig(), "toy");
    c.access(0x000, false);
    c.access(0x040, false);
    CacheAccessResult r = c.access(0x080, false);
    EXPECT_FALSE(r.writeback);
}

TEST(Cache, WriteHitMarksDirty)
{
    Cache c(toyConfig(), "toy");
    c.access(0x000, false); // clean
    c.access(0x000, true);  // now dirty
    c.access(0x040, false);
    c.access(0x040, false);
    EXPECT_TRUE(c.access(0x080, false).writeback);
}

TEST(Cache, StatsAccumulate)
{
    Cache c(toyConfig(), "toy");
    c.access(0x000, false);
    c.access(0x000, false);
    c.access(0x100, false);
    EXPECT_EQ(c.stats().accesses, 3u);
    EXPECT_EQ(c.stats().misses, 2u);
    EXPECT_NEAR(c.stats().missRate(), 2.0 / 3.0, 1e-12);
}

TEST(Cache, ResetClears)
{
    Cache c(toyConfig(), "toy");
    c.access(0x000, true);
    c.reset();
    EXPECT_FALSE(c.probe(0x000));
    EXPECT_EQ(c.stats().accesses, 0u);
}

TEST(Cache, WorkingSetLargerThanCacheThrashes)
{
    Cache c(toyConfig(), "toy");
    // Stream over 4x the cache size twice; second pass still misses
    // (LRU with a working set > capacity).
    for (int pass = 0; pass < 2; ++pass) {
        for (Addr a = 0; a < 256; a += 16)
            c.access(a, false);
    }
    EXPECT_EQ(c.stats().misses, c.stats().accesses);
}

TEST(Cache, WorkingSetSmallerThanCacheHitsAfterWarmup)
{
    Cache c(toyConfig(), "toy");
    for (int pass = 0; pass < 4; ++pass) {
        for (Addr a = 0; a < 64; a += 16)
            c.access(a, false);
    }
    // 4 cold misses, then hits.
    EXPECT_EQ(c.stats().misses, 4u);
    EXPECT_EQ(c.stats().accesses, 16u);
}
