/**
 * @file
 * Unit tests for the Markov-N and RLE-N phase-change predictors
 * (paper sections 5.2.2-5.2.3): table learning, run-length indexed
 * prediction, the remove-on-false-change rule, confidence gating and
 * the Last-4 / Top-N payload views.
 */

#include <gtest/gtest.h>

#include <vector>

#include "pred/change_predictor.hh"

using namespace tpcp;
using namespace tpcp::pred;

namespace
{

/** Feeds a repeating run pattern: phase ids with run lengths. */
void
feedPattern(ChangePredictor &p,
            const std::vector<std::pair<PhaseId, int>> &pattern,
            int repetitions)
{
    for (int rep = 0; rep < repetitions; ++rep) {
        for (const auto &[id, len] : pattern) {
            for (int i = 0; i < len; ++i)
                p.observe(id);
        }
    }
}

} // namespace

TEST(ChangePredictor, UnprimedPredictsNothing)
{
    ChangePredictor p(ChangePredictorConfig::rle(2));
    ChangePrediction pred = p.predict();
    EXPECT_FALSE(pred.tableHit);
}

TEST(ChangePredictor, TracksRunState)
{
    ChangePredictor p(ChangePredictorConfig::rle(1));
    p.observe(3);
    p.observe(3);
    p.observe(3);
    EXPECT_EQ(p.currentPhase(), 3u);
    EXPECT_EQ(p.currentRunLength(), 3u);
    p.observe(4);
    EXPECT_EQ(p.currentPhase(), 4u);
    EXPECT_EQ(p.currentRunLength(), 1u);
}

TEST(ChangePredictor, ObserveReturnsRecordOnlyAtChanges)
{
    ChangePredictor p(ChangePredictorConfig::rle(1));
    EXPECT_FALSE(p.observe(1).has_value()) << "priming";
    EXPECT_FALSE(p.observe(1).has_value()) << "stable";
    EXPECT_TRUE(p.observe(2).has_value()) << "change";
}

TEST(ChangePredictor, Rle1LearnsPeriodicPattern)
{
    // Pattern: 5 intervals of phase 1, 3 of phase 2, repeating.
    // After warmup, RLE-1 keyed on (phase, run-so-far) hits exactly
    // at the change points and predicts the right successor.
    ChangePredictor p(ChangePredictorConfig::rle(1));
    feedPattern(p, {{1, 5}, {2, 3}}, 3);

    // Now walk one more period checking predictions each interval.
    // The RLE key contains the current run length, so a table hit
    // fires exactly when the previous run has reached its full
    // length - i.e. just before observing the first interval of the
    // next phase (i == 0 below). A hit anywhere else would be a
    // false "change now" alarm.
    int correct_changes = 0, false_alarms = 0;
    for (const auto &[id, len] :
         std::vector<std::pair<PhaseId, int>>{{1, 5}, {2, 3}}) {
        for (int i = 0; i < len; ++i) {
            ChangePrediction pred = p.predict();
            if (pred.tableHit && pred.confident) {
                if (i == 0) {
                    if (pred.primary == id)
                        ++correct_changes;
                } else {
                    ++false_alarms;
                }
            }
            p.observe(id);
        }
    }
    EXPECT_EQ(correct_changes, 2)
        << "both changes in the period predicted";
    EXPECT_EQ(false_alarms, 0)
        << "no hit mid-run (run length is in the key)";
}

TEST(ChangePredictor, RemoveOnFalseChangeForPlainRle)
{
    ChangePredictor p(ChangePredictorConfig::rle(1));
    // Teach it that after 2 intervals of phase 1 comes phase 2.
    feedPattern(p, {{1, 2}, {2, 2}}, 2);
    // Now hold phase 1 for longer: at run length 2 there is a table
    // hit predicting a change, but the phase continues, so the entry
    // is removed (paper rule).
    p.observe(1);
    p.observe(1);           // run length 2 - entry fires
    p.observe(1);           // run continues - entry removed
    ChangePrediction pred = p.predict();
    // After returning to run length 2 next time, the entry is gone.
    p.observe(2);
    p.observe(1);
    p.observe(1);
    pred = p.predict();
    EXPECT_FALSE(pred.tableHit)
        << "the falsely-firing entry must have been removed";
}

TEST(ChangePredictor, MarkovConfidenceDecrementsInsteadOfRemoval)
{
    ChangePredictorConfig cfg = ChangePredictorConfig::markov(1);
    ChangePredictor p(cfg);
    feedPattern(p, {{1, 2}, {2, 2}}, 3);
    // Hold phase 1: the Markov entry (history {1}) hits every
    // interval; without removal it stays but loses confidence.
    p.observe(1);
    p.observe(1);
    p.observe(1);
    ChangePrediction pred = p.predict();
    EXPECT_TRUE(pred.tableHit) << "Markov entries are not removed";
    EXPECT_FALSE(pred.confident) << "but they lose confidence";
}

TEST(ChangePredictor, Markov1LearnsAlternation)
{
    ChangePredictor p(ChangePredictorConfig::markov(1));
    feedPattern(p, {{1, 4}, {2, 4}}, 4);
    // At any point while in phase 2, history {2} predicts change->1.
    p.observe(2);
    auto out = p.observe(1); // change 2->1
    ASSERT_TRUE(out.has_value());
    EXPECT_TRUE(out->tableHit);
    EXPECT_TRUE(out->primaryCorrect);
}

TEST(ChangePredictor, Markov2UsesDeeperHistory)
{
    // Sequence of unique phases: 1,2,3,1,2,3,... Markov-2 history
    // {2,3} -> 1, {3,1} -> 2, {1,2} -> 3 disambiguates perfectly.
    ChangePredictor p(ChangePredictorConfig::markov(2));
    for (int rep = 0; rep < 6; ++rep) {
        for (PhaseId id : {1, 2, 3}) {
            p.observe(id);
            p.observe(id);
        }
    }
    int correct = 0, total = 0;
    for (PhaseId id : {1, 2, 3, 1, 2, 3}) {
        for (int i = 0; i < 2; ++i) {
            auto out = p.observe(id);
            if (out) {
                ++total;
                correct += out->primaryCorrect ? 1 : 0;
            }
        }
    }
    EXPECT_EQ(correct, total);
    EXPECT_GT(total, 3);
}

TEST(ChangePredictor, Last4AcceptsRecentOutcomes)
{
    // From phase 1, the successor cycles 2,3,4: a single-outcome
    // entry keeps mispredicting, but Last-4 accepts all of them.
    ChangePredictor p(
        ChangePredictorConfig::markov(1, PayloadView::Last4));
    for (int rep = 0; rep < 4; ++rep) {
        for (PhaseId succ : {2, 3, 4}) {
            p.observe(1);
            p.observe(1);
            p.observe(succ);
        }
    }
    int any_correct = 0, primary_correct = 0, total = 0;
    for (PhaseId succ : {2, 3, 4, 2, 3, 4}) {
        p.observe(1);
        p.observe(1);
        auto out = p.observe(succ);
        if (out && out->tableHit) {
            ++total;
            any_correct += out->anyCorrect ? 1 : 0;
            primary_correct += out->primaryCorrect ? 1 : 0;
        }
    }
    ASSERT_GT(total, 3);
    EXPECT_EQ(any_correct, total)
        << "all successors are among the last 4 unique outcomes";
    EXPECT_LT(primary_correct, total)
        << "the single last outcome keeps changing";
}

TEST(ChangePredictor, TopPayloadTracksMostFrequent)
{
    // Successor of phase 1 is usually 2 (3 of 4 times), sometimes 3.
    ChangePredictor p(
        ChangePredictorConfig::markov(1, PayloadView::Top1));
    for (int rep = 0; rep < 5; ++rep) {
        for (PhaseId succ : {2, 2, 2, 3}) {
            p.observe(1);
            p.observe(1);
            p.observe(succ);
        }
    }
    p.observe(1);
    p.observe(1);
    ChangePrediction pred = p.predict();
    ASSERT_TRUE(pred.tableHit);
    EXPECT_EQ(pred.primary, 2u) << "Top-1 is the most frequent";
}

TEST(ChangePredictor, Top4ListsUpToFourCandidates)
{
    ChangePredictor p(
        ChangePredictorConfig::markov(1, PayloadView::Top4));
    for (int rep = 0; rep < 3; ++rep) {
        for (PhaseId succ : {2, 3, 4, 5, 6}) {
            p.observe(1);
            p.observe(1);
            p.observe(succ);
        }
    }
    p.observe(1);
    p.observe(1);
    ChangePrediction pred = p.predict();
    ASSERT_TRUE(pred.tableHit);
    EXPECT_LE(pred.candidates.size(), 4u);
    EXPECT_GE(pred.candidates.size(), 3u);
}

TEST(ChangePredictor, ConfidenceGatesOnOneBit)
{
    ChangePredictor p(ChangePredictorConfig::rle(1));
    // First sighting of a change inserts with confidence 0.
    p.observe(1);
    p.observe(1);
    p.observe(2); // inserts entry for (1, run 2) -> 2
    p.observe(1);
    p.observe(1); // back at (1, run 2)
    ChangePrediction pred = p.predict();
    ASSERT_TRUE(pred.tableHit);
    EXPECT_FALSE(pred.confident) << "fresh entries are unconfident";
    p.observe(2); // correct: confidence -> 1
    p.observe(1);
    p.observe(1);
    pred = p.predict();
    ASSERT_TRUE(pred.tableHit);
    EXPECT_TRUE(pred.confident);
}

TEST(ChangePredictor, NoConfidenceModeAlwaysConfident)
{
    ChangePredictorConfig cfg = ChangePredictorConfig::rle(1);
    cfg.useConfidence = false;
    ChangePredictor p(cfg);
    p.observe(1);
    p.observe(1);
    p.observe(2);
    p.observe(1);
    p.observe(1);
    ChangePrediction pred = p.predict();
    ASSERT_TRUE(pred.tableHit);
    EXPECT_TRUE(pred.confident);
}

TEST(ChangePredictor, SmallTableEvicts)
{
    ChangePredictorConfig cfg = ChangePredictorConfig::rle(2);
    cfg.tableEntries = 4;
    cfg.tableWays = 4;
    ChangePredictor p(cfg);
    // Lots of distinct (phase, run-length) change contexts overflow
    // a 4-entry table without crashing.
    for (PhaseId id = 1; id <= 30; ++id) {
        for (PhaseId i = 0; i < 1 + id % 5; ++i)
            p.observe(id);
    }
    SUCCEED();
}

TEST(ChangePredictor, NamesAreDescriptive)
{
    EXPECT_EQ(ChangePredictorConfig::markov(2).name, "Markov-2");
    EXPECT_EQ(ChangePredictorConfig::rle(1).name, "RLE-1");
    EXPECT_EQ(
        ChangePredictorConfig::markov(1, PayloadView::Top4).name,
        "Top4 Markov-1");
    EXPECT_EQ(ChangePredictorConfig::rle(2, PayloadView::Last4, 128)
                  .name,
              "Last4 RLE-2 (128e)");
}
