/**
 * @file
 * Unit tests for the TAGE-style and perceptron phase-change
 * predictors added on top of the paper's Markov/RLE stack:
 * checkpoint round-trips (byte-identical re-save, identical
 * continued predictions), snapshot geometry/truncation rejection,
 * fault injection in both the mitigated and unmitigated models, the
 * table-geometry validation shared with the paper predictors, the
 * no-training end-of-trace flush of the run-length predictor, and
 * the constant-phase (zero-change) regression for every registered
 * predictor spec.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/state_io.hh"
#include "common/status.hh"
#include "pred/change_predictor.hh"
#include "pred/eval.hh"
#include "pred/length_predictor.hh"
#include "pred/perceptron_predictor.hh"
#include "pred/predictor_spec.hh"
#include "pred/tage_predictor.hh"

using namespace tpcp;
using namespace tpcp::pred;

namespace
{

/** A phase trace with enough recurring structure that both new
 * predictors allocate/train real state: three interleaved run
 * patterns, repeated. */
std::vector<PhaseId>
patternedTrace(int repetitions)
{
    const std::vector<std::pair<PhaseId, int>> pattern = {
        {1, 5}, {2, 3}, {1, 5}, {3, 2}, {4, 7}, {2, 3},
    };
    std::vector<PhaseId> trace;
    for (int rep = 0; rep < repetitions; ++rep)
        for (const auto &[id, len] : pattern)
            for (int i = 0; i < len; ++i)
                trace.push_back(id);
    return trace;
}

void
feed(PhaseChangePredictor &p, const std::vector<PhaseId> &trace)
{
    for (PhaseId id : trace)
        p.observe(id);
}

std::vector<std::uint8_t>
snapshot(const PhaseChangePredictor &p)
{
    StateWriter w;
    p.saveState(w);
    return w.buffer();
}

/** Saves @p trained, restores into @p fresh, then drives both
 * through @p tail asserting identical predictions and outcomes at
 * every step, and finally that both re-save to identical bytes. */
template <typename Predictor>
void
expectRoundTripEquivalent(Predictor &trained, Predictor &fresh,
                          const std::vector<PhaseId> &tail)
{
    std::vector<std::uint8_t> bytes = snapshot(trained);
    StateReader r(bytes);
    fresh.loadState(r);
    EXPECT_EQ(r.remaining(), 0u) << "loadState consumed everything";

    for (std::size_t i = 0; i < tail.size(); ++i) {
        ChangePrediction a = trained.predict();
        ChangePrediction b = fresh.predict();
        EXPECT_EQ(a.tableHit, b.tableHit) << "interval " << i;
        EXPECT_EQ(a.confident, b.confident) << "interval " << i;
        EXPECT_EQ(a.primary, b.primary) << "interval " << i;
        EXPECT_EQ(a.candidates, b.candidates) << "interval " << i;

        auto oa = trained.observe(tail[i]);
        auto ob = fresh.observe(tail[i]);
        ASSERT_EQ(oa.has_value(), ob.has_value()) << "interval " << i;
        if (oa) {
            EXPECT_EQ(oa->primaryCorrect, ob->primaryCorrect);
            EXPECT_EQ(oa->anyCorrect, ob->anyCorrect);
        }
    }
    EXPECT_EQ(snapshot(trained), snapshot(fresh))
        << "re-saved snapshots diverge after identical input";
}

} // namespace

// --- Checkpoint round-trips -------------------------------------

TEST(TagePredictor, CheckpointRoundTripIsByteIdentical)
{
    TagePredictor trained, fresh;
    feed(trained, patternedTrace(6));
    expectRoundTripEquivalent(trained, fresh, patternedTrace(3));
}

TEST(PerceptronPredictor, CheckpointRoundTripIsByteIdentical)
{
    PerceptronPredictor trained, fresh;
    feed(trained, patternedTrace(6));
    expectRoundTripEquivalent(trained, fresh, patternedTrace(3));
}

TEST(TagePredictor, UnprimedCheckpointRoundTrips)
{
    TagePredictor trained, fresh;
    expectRoundTripEquivalent(trained, fresh, patternedTrace(2));
}

// --- Snapshot rejection -----------------------------------------

TEST(TagePredictor, LoadRejectsGeometryMismatch)
{
    TagePredictor trained;
    feed(trained, patternedTrace(4));
    std::vector<std::uint8_t> bytes = snapshot(trained);

    TagePredictorConfig narrow;
    narrow.tableEntries = 64;
    TagePredictor other(narrow);
    StateReader r(bytes);
    EXPECT_THROW(other.loadState(r), tpcp::Error);

    TagePredictorConfig fewer;
    fewer.historyLengths = {1, 2, 4};
    TagePredictor shallower(fewer);
    StateReader r2(bytes);
    EXPECT_THROW(shallower.loadState(r2), tpcp::Error);
}

TEST(PerceptronPredictor, LoadRejectsGeometryMismatch)
{
    PerceptronPredictor trained;
    feed(trained, patternedTrace(4));
    std::vector<std::uint8_t> bytes = snapshot(trained);

    PerceptronPredictorConfig narrow;
    narrow.weightRows = 256;
    PerceptronPredictor other(narrow);
    StateReader r(bytes);
    EXPECT_THROW(other.loadState(r), tpcp::Error);
}

TEST(TagePredictor, LoadRejectsTruncatedSnapshot)
{
    TagePredictor trained;
    feed(trained, patternedTrace(4));
    std::vector<std::uint8_t> bytes = snapshot(trained);
    // Any truncation must surface as a structural error, never as a
    // predictor quietly initialized from garbage.
    for (std::size_t keep :
         {bytes.size() - 1, bytes.size() / 2, std::size_t(3)}) {
        TagePredictor fresh;
        StateReader r(bytes.data(), keep);
        EXPECT_THROW(fresh.loadState(r), tpcp::Error)
            << "truncated to " << keep << " bytes";
    }
}

TEST(PerceptronPredictor, LoadRejectsTruncatedSnapshot)
{
    PerceptronPredictor trained;
    feed(trained, patternedTrace(4));
    std::vector<std::uint8_t> bytes = snapshot(trained);
    for (std::size_t keep :
         {bytes.size() - 1, bytes.size() / 2, std::size_t(3)}) {
        PerceptronPredictor fresh;
        StateReader r(bytes.data(), keep);
        EXPECT_THROW(fresh.loadState(r), tpcp::Error)
            << "truncated to " << keep << " bytes";
    }
}

// --- Fault injection --------------------------------------------

TEST(TagePredictor, InjectFaultNeedsLiveEntries)
{
    TagePredictor p;
    Rng rng(1234);
    // No table content yet: nothing to flip in either model.
    EXPECT_FALSE(p.injectFault(rng, false));
    EXPECT_FALSE(p.injectFault(rng, true));

    feed(p, patternedTrace(4));
    EXPECT_TRUE(p.injectFault(rng, false));
    EXPECT_TRUE(p.injectFault(rng, true));
}

TEST(PerceptronPredictor, InjectFaultBothModels)
{
    PerceptronPredictor p;
    Rng rng(99);
    feed(p, patternedTrace(4));
    EXPECT_TRUE(p.injectFault(rng, false));
    EXPECT_TRUE(p.injectFault(rng, true));
}

TEST(TagePredictor, MitigatedFaultDegradesToRetrainableMiss)
{
    // The mitigated (ECC detect-and-drop) model may only ever erase
    // entries; the predictor must keep answering and re-learn.
    TagePredictor p;
    Rng rng(7);
    feed(p, patternedTrace(6));
    for (int i = 0; i < 64; ++i)
        p.injectFault(rng, true);
    feed(p, patternedTrace(6));
    EXPECT_TRUE(p.predict().tableHit)
        << "predictor never recovered from mitigated faults";
}

// --- Table-geometry validation (shared with the paper stack) ----

TEST(TagePredictor, RejectsNonMultipleBaseGeometry)
{
    TagePredictorConfig cfg;
    cfg.baseEntries = 10;
    cfg.baseWays = 4;
    EXPECT_THROW(TagePredictor{cfg}, tpcp::Error);
}

TEST(ChangePredictor, RejectsNonMultipleTableGeometry)
{
    ChangePredictorConfig cfg = ChangePredictorConfig::markov(1);
    cfg.tableEntries = 30; // not a multiple of 4 ways
    EXPECT_THROW(ChangePredictor{cfg}, tpcp::Error);
}

TEST(LengthPredictor, RejectsNonMultipleTableGeometry)
{
    LengthPredictorConfig cfg;
    cfg.tableEntries = 30;
    cfg.tableWays = 4;
    EXPECT_THROW(RunLengthPredictor{cfg}, tpcp::Error);
}

// --- End-of-trace flush (no training on truncated runs) ---------

TEST(LengthPredictor, FinishReportsWithoutTraining)
{
    // Two predictors fed identically; one flushed. finish() must
    // report the standing prediction for the accounting but leave
    // the table untouched — the final run was cut by the end of the
    // trace, not by a real phase change, so its length is a lie.
    RunLengthPredictor flushed, control;
    std::vector<PhaseId> trace = patternedTrace(4);
    // Stop mid-run so the open run is genuinely truncated.
    trace.resize(trace.size() - 2);
    for (PhaseId id : trace) {
        flushed.observe(id);
        control.observe(id);
    }
    ASSERT_TRUE(flushed.pendingPrediction().has_value());
    EXPECT_TRUE(flushed.finish().has_value());

    // finish() may clear exactly one thing — the pending flag. Any
    // further byte difference means the table trained on the
    // truncated final run.
    StateWriter wf, wc;
    flushed.saveState(wf);
    control.saveState(wc);
    ASSERT_EQ(wf.size(), wc.size());
    std::size_t differing = 0;
    for (std::size_t i = 0; i < wf.size(); ++i)
        differing += wf.buffer()[i] != wc.buffer()[i];
    EXPECT_EQ(differing, 1u)
        << "finish() trained on the truncated final run";
}

// --- Constant-phase streams (divide-by-zero regression) ---------

TEST(PredictorSpecs, ConstantPhaseTraceIsFiniteEverywhere)
{
    const std::vector<PhaseId> constant(64, PhaseId(5));
    for (const std::string &name : predictorSpecNames()) {
        auto spec = predictorSpecByName(name);
        if (spec) {
            // "lastvalue" maps to no spec by design: the last-value
            // predictor has no change table to configure.
            ChangeOutcomeStats cs =
                evalChangeOutcome(constant, *spec);
            EXPECT_EQ(cs.changes, 0u) << name;
            EXPECT_EQ(cs.correctRate(), 0.0) << name;
            EXPECT_EQ(cs.confidentCorrectRate(), 0.0) << name;
        }

        NextPhaseStats ns =
            spec ? evalNextPhase(constant, *spec)
                 : evalNextPhase(constant, std::nullopt);
        EXPECT_GE(ns.accuracy(), 0.0) << name;
        EXPECT_LE(ns.accuracy(), 1.0) << name;
        EXPECT_GE(ns.confidentAccuracy(), 0.0) << name;
        EXPECT_LE(ns.confidentAccuracy(), 1.0) << name;
    }
}

TEST(PredictorSpecs, EmptyTraceIsFiniteEverywhere)
{
    const std::vector<PhaseId> empty;
    for (const std::string &name : predictorSpecNames()) {
        auto spec = predictorSpecByName(name);
        if (!spec)
            continue;
        ChangeOutcomeStats cs = evalChangeOutcome(empty, *spec);
        EXPECT_EQ(cs.changes, 0u) << name;
        EXPECT_EQ(cs.correctRate(), 0.0) << name;
    }
}
