/**
 * @file
 * Unit tests for last-value prediction with per-phase confidence
 * counters (paper section 5.1).
 */

#include <gtest/gtest.h>

#include "pred/last_value.hh"

using namespace tpcp;
using namespace tpcp::pred;

TEST(LastValue, UnprimedInitially)
{
    LastValuePredictor p;
    EXPECT_FALSE(p.primed());
    EXPECT_FALSE(p.confident());
}

TEST(LastValue, PredictsLastObserved)
{
    LastValuePredictor p;
    p.observe(7);
    EXPECT_TRUE(p.primed());
    EXPECT_EQ(p.predict(), 7u);
    p.observe(9);
    EXPECT_EQ(p.predict(), 9u);
}

TEST(LastValue, ConfidenceBuildsOverStableRun)
{
    LastValuePredictor p; // 3 bits, threshold 6
    p.observe(1);
    EXPECT_FALSE(p.confident());
    // 5 correct last-value outcomes: counter 5, still unconfident.
    for (int i = 0; i < 5; ++i)
        p.observe(1);
    EXPECT_FALSE(p.confident());
    p.observe(1); // counter 6: confident
    EXPECT_TRUE(p.confident());
}

TEST(LastValue, ConfidenceDropsOnChange)
{
    LastValuePredictor p;
    for (int i = 0; i < 10; ++i)
        p.observe(1);
    EXPECT_TRUE(p.confident());
    p.observe(2); // phase 1's counter decremented; now in phase 2
    EXPECT_FALSE(p.confident()) << "phase 2 starts unconfident";
    p.observe(1); // back in phase 1
    EXPECT_TRUE(p.confident()) << "phase 1 counter was 7-1=6";
    p.observe(2);
    p.observe(1);
    EXPECT_FALSE(p.confident())
        << "repeated changes demote phase 1 below threshold";
}

TEST(LastValue, UnstablePhaseNeverConfident)
{
    LastValuePredictor p;
    for (int i = 0; i < 40; ++i)
        p.observe(static_cast<PhaseId>(i % 2 + 1));
    EXPECT_FALSE(p.confident())
        << "alternating phases keep counters down";
}

TEST(LastValue, ResetConfidence)
{
    LastValuePredictor p;
    for (int i = 0; i < 10; ++i)
        p.observe(4);
    EXPECT_TRUE(p.confident());
    p.resetConfidence(4);
    EXPECT_FALSE(p.confident())
        << "the paper resets a phase's counter when its signature "
           "table entry is replaced";
}

TEST(LastValue, CustomThreshold)
{
    LastValueConfig cfg;
    cfg.confBits = 2;
    cfg.confThreshold = 2;
    LastValuePredictor p(cfg);
    p.observe(1);
    p.observe(1);
    p.observe(1);
    EXPECT_TRUE(p.confident());
}

TEST(LastValue, TransitionPhaseIsAPhaseToo)
{
    // The paper treats the transition phase like any other phase for
    // prediction purposes.
    LastValuePredictor p;
    for (int i = 0; i < 8; ++i)
        p.observe(transitionPhaseId);
    EXPECT_EQ(p.predict(), transitionPhaseId);
    EXPECT_TRUE(p.confident());
}
