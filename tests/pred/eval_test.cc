/**
 * @file
 * Unit tests for the prediction evaluation drivers (the machinery
 * behind Figures 7, 8 and 9), run on hand-built phase traces with
 * known statistics.
 */

#include <gtest/gtest.h>

#include <vector>

#include "pred/eval.hh"
#include "pred/next_phase_predictor.hh"

using namespace tpcp;
using namespace tpcp::pred;

namespace
{

/** Builds a periodic trace of (phase, run length) pairs. */
std::vector<PhaseId>
periodicTrace(const std::vector<std::pair<PhaseId, int>> &period,
              int repetitions)
{
    std::vector<PhaseId> out;
    for (int rep = 0; rep < repetitions; ++rep) {
        for (const auto &[id, len] : period) {
            for (int i = 0; i < len; ++i)
                out.push_back(id);
        }
    }
    return out;
}

} // namespace

TEST(EvalNextPhase, ConstantTraceAllCorrect)
{
    std::vector<PhaseId> trace(100, 5);
    NextPhaseStats s = evalNextPhase(trace, std::nullopt);
    EXPECT_EQ(s.total, 99u) << "first interval primes";
    EXPECT_EQ(s.correct(), 99u);
    EXPECT_EQ(s.phaseChanges, 0u);
    EXPECT_DOUBLE_EQ(s.accuracy(), 1.0);
}

TEST(EvalNextPhase, LastValueAccuracyMatchesChangeRate)
{
    // Runs of 4: one change per 4 intervals -> 25% miss rate, the
    // paper's quoted interval-transition change rate.
    auto trace = periodicTrace({{1, 4}, {2, 4}}, 25);
    NextPhaseStats s = evalNextPhase(trace, std::nullopt);
    EXPECT_NEAR(s.accuracy(), 0.75, 0.01);
    EXPECT_NEAR(static_cast<double>(s.phaseChanges) /
                    static_cast<double>(s.total),
                0.25, 0.01);
}

TEST(EvalNextPhase, CategoriesSumToTotal)
{
    auto trace = periodicTrace({{1, 7}, {2, 2}, {3, 5}}, 12);
    NextPhaseStats s =
        evalNextPhase(trace, ChangePredictorConfig::rle(2));
    EXPECT_EQ(s.correctTable + s.incorrectTable + s.correctLvConf +
                  s.correctLvUnconf + s.incorrectLvUnconf +
                  s.incorrectLvConf,
              s.total);
}

TEST(EvalNextPhase, RlePredictorBeatsLastValueOnPeriodicTrace)
{
    auto trace = periodicTrace({{1, 5}, {2, 3}}, 40);
    NextPhaseStats lv = evalNextPhase(trace, std::nullopt);
    NextPhaseStats rle =
        evalNextPhase(trace, ChangePredictorConfig::rle(1));
    EXPECT_GT(rle.accuracy(), lv.accuracy())
        << "RLE should predict the periodic changes";
    EXPECT_GT(rle.correctTable, 0u);
}

TEST(EvalNextPhase, ConfidenceImprovesAccuracyCutsCoverage)
{
    // A noisy-ish trace: mostly stable with periodic changes.
    auto trace = periodicTrace({{1, 8}, {2, 1}, {1, 6}, {3, 2}}, 20);
    NextPhaseStats s = evalNextPhase(trace, std::nullopt);
    EXPECT_LT(s.confidentCoverage(), 1.0);
    EXPECT_GT(s.confidentAccuracy(), s.accuracy())
        << "confidence filters the unpredictable intervals";
}

TEST(EvalNextPhase, MergeAddsUp)
{
    auto t1 = periodicTrace({{1, 4}, {2, 4}}, 10);
    auto t2 = periodicTrace({{1, 2}, {2, 2}}, 10);
    NextPhaseStats a = evalNextPhase(t1, std::nullopt);
    NextPhaseStats b = evalNextPhase(t2, std::nullopt);
    NextPhaseStats m = a;
    m.merge(b);
    EXPECT_EQ(m.total, a.total + b.total);
    EXPECT_EQ(m.correct(), a.correct() + b.correct());
}

TEST(EvalChangeOutcome, CountsOnlyChanges)
{
    auto trace = periodicTrace({{1, 9}, {2, 1}}, 20);
    ChangeOutcomeStats s =
        evalChangeOutcome(trace, ChangePredictorConfig::rle(2));
    EXPECT_EQ(s.changes, 39u) << "2 changes per period, minus prime";
    EXPECT_EQ(s.confCorrect + s.unconfCorrect + s.tagMiss +
                  s.unconfIncorrect + s.confIncorrect,
              s.changes);
}

TEST(EvalChangeOutcome, PeriodicTraceMostlyCovered)
{
    auto trace = periodicTrace({{1, 5}, {2, 3}}, 50);
    ChangeOutcomeStats s =
        evalChangeOutcome(trace, ChangePredictorConfig::rle(1));
    EXPECT_GT(s.correctRate(), 0.8);
}

TEST(EvalChangeOutcome, Top4AcceptsAnyFrequentSuccessor)
{
    // Phase 1's successor rotates among 2,3,4: Top-1 style
    // correctness is poor, Top-4 style is near perfect.
    std::vector<PhaseId> trace;
    for (int rep = 0; rep < 30; ++rep) {
        for (PhaseId succ : {2, 3, 4}) {
            for (int i = 0; i < 3; ++i)
                trace.push_back(1);
            trace.push_back(succ);
        }
    }
    ChangeOutcomeStats top1 = evalChangeOutcome(
        trace, ChangePredictorConfig::markov(1, PayloadView::Top1));
    ChangeOutcomeStats top4 = evalChangeOutcome(
        trace, ChangePredictorConfig::markov(1, PayloadView::Top4));
    EXPECT_GT(top4.correctRate(), top1.correctRate() + 0.2);
}

TEST(EvalPerfectMarkov, UpperBoundsRealPredictor)
{
    auto trace = periodicTrace({{1, 5}, {2, 3}, {3, 2}, {2, 6}}, 25);
    PerfectMarkovStats perfect = evalPerfectMarkov(trace, 1);
    ChangeOutcomeStats real =
        evalChangeOutcome(trace, ChangePredictorConfig::markov(1));
    EXPECT_GE(perfect.coverage() + 1e-9, real.correctRate())
        << "no real predictor can beat the perfect model";
}

TEST(EvalPerfectMarkov, ColdStartOnlyMisses)
{
    auto trace = periodicTrace({{1, 3}, {2, 3}}, 50);
    PerfectMarkovStats s = evalPerfectMarkov(trace, 1);
    EXPECT_EQ(s.changes - s.seenBefore, 2u)
        << "exactly the two distinct transitions are cold";
}

TEST(EvalRunLength, DistributionCounted)
{
    auto trace = periodicTrace({{1, 5}, {2, 20}}, 10);
    RunLengthStats s = evalRunLength(trace);
    EXPECT_EQ(s.totalRuns, 20u);
    EXPECT_EQ(s.classCounts[0], 10u);
    EXPECT_EQ(s.classCounts[1], 10u);
    EXPECT_DOUBLE_EQ(s.classFraction(0), 0.5);
}

TEST(EvalRunLength, PeriodicTraceLowMisprediction)
{
    auto trace = periodicTrace({{1, 5}, {2, 20}}, 20);
    RunLengthStats s = evalRunLength(trace);
    EXPECT_GT(s.predictions, 20u);
    EXPECT_LT(s.mispredictRate(), 0.15);
}

TEST(EvalRunLength, MergeAddsUp)
{
    auto t = periodicTrace({{1, 5}, {2, 20}}, 5);
    RunLengthStats a = evalRunLength(t);
    RunLengthStats b = evalRunLength(t);
    a.merge(b);
    EXPECT_EQ(a.totalRuns, 20u);
    EXPECT_EQ(a.classCounts[0] + a.classCounts[1], 20u);
}

TEST(NextPhasePredictor, MatchesAcceptAnySemantics)
{
    NextPhasePrediction pred;
    pred.source = PredictionSource::ChangeTable;
    pred.phase = 2;
    pred.candidates = {2, 3, 4};
    EXPECT_TRUE(pred.matches(3, true));
    EXPECT_FALSE(pred.matches(3, false));
    EXPECT_TRUE(pred.matches(2, false));
    pred.source = PredictionSource::LastValue;
    EXPECT_FALSE(pred.matches(3, true))
        << "accept-any only applies to table predictions";
}
