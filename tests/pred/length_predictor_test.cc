/**
 * @file
 * Unit tests for run-length-class prediction (paper section 6.2):
 * RLE-2 indexed table, hysteresis and default-class behavior.
 */

#include <gtest/gtest.h>

#include "pred/length_predictor.hh"

using namespace tpcp;
using namespace tpcp::pred;

namespace
{

/** Feeds runs of (phase, length) pairs; returns all records. */
std::vector<LengthPredRecord>
feed(RunLengthPredictor &p,
     const std::vector<std::pair<PhaseId, int>> &runs)
{
    std::vector<LengthPredRecord> out;
    for (const auto &[id, len] : runs) {
        for (int i = 0; i < len; ++i) {
            auto rec = p.observe(id);
            if (rec)
                out.push_back(*rec);
        }
    }
    return out;
}

} // namespace

TEST(LengthPredictor, NoRecordBeforeFirstPredictedRunCompletes)
{
    RunLengthPredictor p;
    // First run has no prediction (no history); the record appears
    // only when the *second* run (the first predicted one) ends.
    auto recs = feed(p, {{1, 3}, {2, 4}});
    EXPECT_TRUE(recs.empty());
    auto rec = p.observe(3); // completes run of phase 2
    ASSERT_TRUE(rec.has_value());
}

TEST(LengthPredictor, DefaultClassOnTableMiss)
{
    LengthPredictorConfig cfg;
    cfg.defaultClass = 0;
    RunLengthPredictor p(cfg);
    feed(p, {{1, 3}, {2, 4}});
    auto rec = p.observe(3);
    ASSERT_TRUE(rec.has_value());
    EXPECT_FALSE(rec->tableHit);
    EXPECT_EQ(rec->predictedClass, 0u);
    EXPECT_EQ(rec->actualClass, 0u) << "run of 4 is class 0";
    EXPECT_TRUE(rec->correct());
}

TEST(LengthPredictor, LearnsStableLongRuns)
{
    RunLengthPredictor p;
    // Periodic pattern: phase 1 runs 40 intervals (class 1), phase 2
    // runs 5 (class 0). After warmup the predictor should hit.
    std::vector<std::pair<PhaseId, int>> period = {{1, 40}, {2, 5}};
    feed(p, {period[0], period[1], period[0], period[1],
             period[0], period[1]});
    auto recs = feed(p, {period[0], period[1], period[0]});
    ASSERT_GE(recs.size(), 2u);
    for (const auto &r : recs) {
        EXPECT_TRUE(r.tableHit);
        EXPECT_TRUE(r.correct())
            << "predicted " << r.predictedClass << " actual "
            << r.actualClass;
    }
}

TEST(LengthPredictor, HysteresisFiltersOneOffNoise)
{
    // Order 1 keeps the table key stable ((2,5) completed run) while
    // the predicted phase-1 run length varies, isolating the
    // hysteresis behavior. (With order 2 a noisy run also perturbs
    // subsequent keys, which is correct but tests something else.)
    LengthPredictorConfig cfg;
    cfg.order = 1;
    RunLengthPredictor p(cfg);
    feed(p, {{1, 40}, {2, 5}, {1, 40}, {2, 5}, {1, 40}, {2, 5}});
    // One noisy short phase-1 run, then back to 40s: the entry must
    // keep predicting class 1 (needs two-in-a-row to change).
    feed(p, {{1, 3}, {2, 5}});
    auto recs = feed(p, {{1, 40}, {2, 5}, {1, 40}});
    bool found = false;
    for (const auto &r : recs) {
        if (r.actualClass == 1 && r.tableHit) {
            found = true;
            EXPECT_EQ(r.predictedClass, 1u)
                << "one-off noise must not retrain the entry";
        }
    }
    EXPECT_TRUE(found);
}

TEST(LengthPredictor, AdoptsClassSeenTwiceInARow)
{
    LengthPredictorConfig cfg;
    cfg.order = 1;
    RunLengthPredictor p(cfg);
    feed(p, {{1, 40}, {2, 5}, {1, 40}, {2, 5}});
    // The phase-1 run length genuinely changes to class 0; after two
    // sightings in a row the entry retrains.
    feed(p, {{1, 3}, {2, 5}, {1, 3}, {2, 5}});
    auto recs = feed(p, {{1, 3}, {2, 5}, {1, 3}});
    bool checked = false;
    for (const auto &r : recs) {
        if (r.actualClass == 0 && r.tableHit) {
            checked = true;
            EXPECT_EQ(r.predictedClass, 0u);
        }
    }
    EXPECT_TRUE(checked);
}

TEST(LengthPredictor, FinishFlushesOpenRun)
{
    RunLengthPredictor p;
    feed(p, {{1, 3}, {2, 4}, {1, 3}});
    auto rec = p.finish();
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->actualClass, 0u);
    EXPECT_FALSE(p.finish().has_value()) << "finish is idempotent";
}

TEST(LengthPredictor, ClassBoundariesExercised)
{
    RunLengthPredictor p;
    feed(p, {{1, 10}, {2, 20}, {3, 200}});
    auto rec = p.observe(4); // completes the 200-run (class 2)
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->actualClass, 2u);
}
