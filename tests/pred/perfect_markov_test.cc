/**
 * @file
 * Unit tests for the perfect Markov upper bound (paper section 6.1).
 */

#include <gtest/gtest.h>

#include "pred/perfect_markov.hh"

using namespace tpcp;
using namespace tpcp::pred;

TEST(PerfectMarkov, NoRecordWhileStable)
{
    PerfectMarkov m(1);
    EXPECT_FALSE(m.observe(1).has_value());
    EXPECT_FALSE(m.observe(1).has_value());
}

TEST(PerfectMarkov, FirstChangeIsColdStart)
{
    PerfectMarkov m(1);
    m.observe(1);
    auto out = m.observe(2);
    ASSERT_TRUE(out.has_value());
    EXPECT_FALSE(out->seenBefore);
    EXPECT_FALSE(out->historySeen);
}

TEST(PerfectMarkov, RepeatedChangeIsCovered)
{
    PerfectMarkov m(1);
    m.observe(1);
    m.observe(2); // 1->2 cold
    m.observe(1); // 2->1 cold
    auto out = m.observe(2); // 1->2 again: seen
    ASSERT_TRUE(out.has_value());
    EXPECT_TRUE(out->seenBefore);
}

TEST(PerfectMarkov, DifferentOutcomeSameHistory)
{
    PerfectMarkov m(1);
    m.observe(1);
    m.observe(2);
    m.observe(1);
    m.observe(2);
    m.observe(1);
    auto out = m.observe(3); // 1->3 never seen; history {1} seen
    ASSERT_TRUE(out.has_value());
    EXPECT_FALSE(out->seenBefore);
    EXPECT_TRUE(out->historySeen);
}

TEST(PerfectMarkov, OrderTwoDisambiguates)
{
    // With order 2: (1,2)->3 differs from (4,2)->? contexts.
    PerfectMarkov m(2);
    m.observe(1);
    m.observe(2);
    m.observe(3); // history {1,2} -> 3
    m.observe(4);
    m.observe(2);
    auto out = m.observe(3); // history {4,2} -> 3: cold for order 2
    ASSERT_TRUE(out.has_value());
    EXPECT_FALSE(out->seenBefore);

    // Replay the first context: now covered.
    m.observe(1);
    m.observe(2);
    auto out2 = m.observe(3);
    ASSERT_TRUE(out2.has_value());
    EXPECT_TRUE(out2->seenBefore);
}

TEST(PerfectMarkov, PeriodicTraceFullyCoveredAfterFirstPeriod)
{
    PerfectMarkov m(1);
    int cold = 0, covered = 0;
    for (int rep = 0; rep < 5; ++rep) {
        for (PhaseId id : {1, 2, 3}) {
            for (int i = 0; i < 3; ++i) {
                auto out = m.observe(id);
                if (out) {
                    if (out->seenBefore)
                        ++covered;
                    else
                        ++cold;
                }
            }
        }
    }
    EXPECT_EQ(cold, 3) << "one cold start per distinct transition";
    EXPECT_EQ(covered, 11);
}
