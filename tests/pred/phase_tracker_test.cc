/**
 * @file
 * Tests for the full phase-tracking unit (classifier + predictors
 * behind the online interface).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "phase/phase_trace.hh"
#include "pred/phase_tracker.hh"

using namespace tpcp;
using namespace tpcp::pred;

namespace
{

/** Feeds one interval's worth of branches for a code shape. */
void
feedInterval(PhaseTracker &tracker, unsigned shape, Rng &rng,
             int branches = 200)
{
    for (int b = 0; b < branches; ++b) {
        Addr pc = 0x10000 * (shape + 1) + 4 * rng.nextBounded(12);
        tracker.onBranch(pc, 13);
    }
}

PhaseTrackerConfig
quickConfig()
{
    PhaseTrackerConfig cfg;
    cfg.classifier.minCountThreshold = 2; // fast stabilization
    return cfg;
}

} // namespace

TEST(PhaseTracker, ClassifiesAndCounts)
{
    PhaseTracker tracker(quickConfig());
    Rng rng(std::uint64_t{1});
    for (int i = 0; i < 10; ++i) {
        feedInterval(tracker, 0, rng);
        tracker.onIntervalEnd(1.0);
    }
    EXPECT_EQ(tracker.intervals(), 10u);
    EXPECT_EQ(tracker.classifier().numStablePhases(), 1u);
}

TEST(PhaseTracker, ReportsPhaseChanges)
{
    PhaseTracker tracker(quickConfig());
    Rng rng(std::uint64_t{2});
    std::vector<bool> changes;
    for (int i = 0; i < 24; ++i) {
        unsigned shape = (i / 6) % 2;
        feedInterval(tracker, shape, rng);
        changes.push_back(
            tracker.onIntervalEnd(1.0 + shape).phaseChanged);
    }
    // Interval 0 inserts (transition, sighting 1); interval 1 is the
    // min_count == 2nd sighting and promotes — a phase change. The
    // stable dwell starts at interval 2.
    EXPECT_FALSE(changes[2]) << "stable dwell";
    int total_changes = 0;
    for (bool c : changes)
        total_changes += c ? 1 : 0;
    EXPECT_GE(total_changes, 3) << "dwell switches every 6 intervals";
    EXPECT_LE(total_changes, 8);
}

TEST(PhaseTracker, NextPhasePredictionTracksStability)
{
    PhaseTracker tracker(quickConfig());
    Rng rng(std::uint64_t{3});
    PhaseTrackerOutput out;
    for (int i = 0; i < 20; ++i) {
        feedInterval(tracker, 0, rng);
        out = tracker.onIntervalEnd(1.0);
    }
    // After 20 stable intervals, the prediction is the stable phase
    // with last-value confidence.
    EXPECT_EQ(out.nextPhase.phase, out.classification.phase);
    EXPECT_TRUE(out.nextPhase.source ==
                    PredictionSource::LastValue &&
                out.nextPhase.lvConfident);
}

TEST(PhaseTracker, LengthPredictionAppearsAfterChanges)
{
    PhaseTracker tracker(quickConfig());
    Rng rng(std::uint64_t{4});
    std::optional<unsigned> cls;
    for (int rep = 0; rep < 4; ++rep) {
        for (int i = 0; i < 8; ++i) {
            feedInterval(tracker, 0, rng);
            tracker.onIntervalEnd(1.0);
        }
        for (int i = 0; i < 4; ++i) {
            feedInterval(tracker, 1, rng);
            cls = tracker.onIntervalEnd(2.0).currentRunLengthClass;
        }
    }
    ASSERT_TRUE(cls.has_value())
        << "a standing length prediction exists after changes";
    EXPECT_LT(*cls, phase::numRunLengthClasses);
}

TEST(PhaseTracker, ReconfigurationFlushKeepsPhaseIds)
{
    PhaseTrackerConfig cfg = quickConfig();
    cfg.classifier.adaptiveThreshold = true;
    PhaseTracker tracker(cfg);
    Rng rng(std::uint64_t{5});
    PhaseId before = invalidPhaseId;
    for (int i = 0; i < 8; ++i) {
        feedInterval(tracker, 0, rng);
        before = tracker.onIntervalEnd(1.0).classification.phase;
    }
    tracker.onReconfiguration();
    // Radically different CPI after the (hypothetical) frequency
    // change: no threshold halving, same phase ID.
    feedInterval(tracker, 0, rng);
    PhaseTrackerOutput out = tracker.onIntervalEnd(5.0);
    EXPECT_EQ(out.classification.phase, before);
    EXPECT_FALSE(out.classification.thresholdHalved);
}

TEST(PhaseTracker, DefaultConfigIsPaperConfig)
{
    PhaseTrackerConfig cfg;
    EXPECT_EQ(cfg.classifier.numCounters, 16u);
    EXPECT_EQ(cfg.classifier.tableEntries, 32u);
    EXPECT_DOUBLE_EQ(cfg.classifier.similarityThreshold, 0.25);
    EXPECT_EQ(cfg.classifier.minCountThreshold, 8u);
    EXPECT_TRUE(cfg.classifier.adaptiveThreshold);
    EXPECT_EQ(cfg.changeTable.kind, PredictorKind::Table);
    EXPECT_EQ(cfg.changeTable.table.history, HistoryKind::Rle);
    EXPECT_EQ(cfg.changeTable.table.order, 2u);
    EXPECT_EQ(cfg.changeTable.table.tableEntries, 32u);
    EXPECT_EQ(cfg.lastValue.confBits, 3u);
    EXPECT_EQ(cfg.lastValue.confThreshold, 6u);
}
