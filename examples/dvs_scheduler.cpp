/**
 * @file
 * Phase-guided dynamic voltage scaling (DVS) example.
 *
 * The paper motivates phase-length prediction with exactly this use
 * case (sections 1 and 6.2): an expensive reconfiguration - here,
 * switching to a low-voltage/low-frequency mode during memory-bound
 * phases - only pays off if the phase lasts long enough to amortize
 * the switch cost.
 *
 * This example classifies a workload online and compares three DVS
 * policies:
 *   - naive:       switch whenever the current interval looks
 *                  memory-bound (no phase information);
 *   - phase:       switch when entering a known memory-bound phase;
 *   - phase+length: additionally require the predicted run-length
 *                  class of the new phase to be 16+ intervals.
 *
 * The figure of merit is the energy-delay proxy: energy saved during
 * correctly covered slow intervals minus the switch penalty paid.
 *
 * Usage: dvs_scheduler [workload...]
 *        (default: ammp gcc/s mcf - long stable phases, thrashy
 *        short phases, and drifting phases respectively)
 */

#include <iostream>
#include <map>
#include <vector>
#include <string>

#include "analysis/experiment.hh"
#include "common/ascii_table.hh"
#include "phase/classifier_config.hh"
#include "pred/length_predictor.hh"
#include "trace/profile_cache.hh"
#include "workload/workload.hh"

using namespace tpcp;

namespace
{

/** Cost model constants (arbitrary but plausible units). */
constexpr double switchPenalty = 20.0; ///< energy cost per switch
constexpr double savePerInterval = 2.0; ///< saving per slow interval
constexpr double slowdownPenalty = 4.0; ///< cost when wrongly slow

struct PolicyResult
{
    std::uint64_t switches = 0;
    std::uint64_t coveredIntervals = 0;
    std::uint64_t wrongIntervals = 0;

    double
    netBenefit() const
    {
        return static_cast<double>(coveredIntervals) *
                   savePerInterval -
               static_cast<double>(wrongIntervals) *
                   slowdownPenalty -
               static_cast<double>(switches) * switchPenalty;
    }
};

} // namespace

namespace
{

void
runWorkload(const std::string &name)
{
    std::cout << "== phase-guided DVS scheduling on " << name
              << " ==\n";
    trace::IntervalProfile profile =
        trace::getProfileByName(name);
    analysis::ClassificationResult res = analysis::classifyProfile(
        profile, phase::ClassifierConfig::paperDefault());

    // A phase is "memory-bound" when its mean CPI lies above the
    // midpoint between the fastest and slowest phase: running at low
    // voltage there costs little performance. The midpoint adapts to
    // workloads that are mostly fast (gzip) or mostly slow (mcf).
    std::map<PhaseId, RunningStats> per_phase;
    for (std::size_t i = 0; i < res.trace.size(); ++i)
        per_phase[res.trace.phases[i]].push(res.trace.cpis[i]);
    double lo = 1e30, hi = 0.0;
    for (const auto &[id, stats] : per_phase) {
        lo = std::min(lo, stats.mean());
        hi = std::max(hi, stats.mean());
    }
    double slow_cutoff = 0.5 * (lo + hi);
    auto memory_bound = [&](PhaseId id) {
        auto it = per_phase.find(id);
        return it != per_phase.end() &&
               it->second.mean() > slow_cutoff;
    };
    auto interval_slow = [&](std::size_t i) {
        return res.trace.cpis[i] > slow_cutoff;
    };

    PolicyResult naive, phase_only, phase_len;

    // Naive: react to the previous interval's CPI.
    bool slow_mode = false;
    for (std::size_t i = 1; i < res.trace.size(); ++i) {
        bool want = interval_slow(i - 1);
        if (want != slow_mode) {
            ++naive.switches;
            slow_mode = want;
        }
        if (slow_mode) {
            if (interval_slow(i))
                ++naive.coveredIntervals;
            else
                ++naive.wrongIntervals;
        }
    }

    // Phase policy: switch when the classified phase changes to/from
    // a memory-bound phase.
    slow_mode = false;
    for (std::size_t i = 1; i < res.trace.size(); ++i) {
        bool want = memory_bound(res.trace.phases[i - 1]);
        if (want != slow_mode) {
            ++phase_only.switches;
            slow_mode = want;
        }
        if (slow_mode) {
            if (interval_slow(i))
                ++phase_only.coveredIntervals;
            else
                ++phase_only.wrongIntervals;
        }
    }

    // Phase + length policy: additionally require the predicted run
    // length of the newly entered phase to be class >= 1 (16+
    // intervals), so the switch cost amortizes (paper section 6.2).
    slow_mode = false;
    pred::LengthPredictorConfig lp_cfg;
    lp_cfg.quantizeKeyLengths = true; // see length_predictor.hh
    pred::RunLengthPredictor length_pred(lp_cfg);
    PhaseId prev = invalidPhaseId;
    for (std::size_t i = 0; i < res.trace.size(); ++i) {
        PhaseId cur = res.trace.phases[i];
        length_pred.observe(cur);
        if (i == 0) {
            prev = cur;
            continue;
        }
        // The RLE-2 length predictor's standing prediction for the
        // run we are currently in (refreshed at each phase change).
        // The predicted length gates *entering* slow mode (don't pay
        // the switch cost for a short-lived phase); once in slow
        // mode we stay as long as the phase is memory-bound.
        unsigned predicted_class =
            length_pred.pendingPrediction().value_or(0);
        bool long_enough = predicted_class >= 1;
        bool want = slow_mode ? memory_bound(prev)
                              : memory_bound(prev) && long_enough;
        if (want != slow_mode) {
            ++phase_len.switches;
            slow_mode = want;
        }
        if (slow_mode) {
            if (interval_slow(i))
                ++phase_len.coveredIntervals;
            else
                ++phase_len.wrongIntervals;
        }
        prev = cur;
    }

    AsciiTable table({"policy", "switches", "covered", "wrong",
                      "net benefit"});
    auto add = [&](const char *label, const PolicyResult &r) {
        table.row()
            .cell(label)
            .cell(r.switches)
            .cell(r.coveredIntervals)
            .cell(r.wrongIntervals)
            .cell(r.netBenefit(), 1);
    };
    add("naive (per-interval)", naive);
    add("phase-aware", phase_only);
    add("phase + length pred", phase_len);
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> names;
    if (argc > 1) {
        for (int i = 1; i < argc; ++i)
            names.emplace_back(argv[i]);
    } else {
        names = {"ammp", "gcc/s", "mcf"};
    }
    for (const std::string &name : names) {
        if (!workload::isWorkloadName(name)) {
            std::cerr << "unknown workload '" << name << "'\n";
            return 1;
        }
        runWorkload(name);
    }
    std::cout << "Higher net benefit is better. Phase awareness cuts "
                 "switch thrash;\nlength prediction avoids paying "
                 "the switch cost for phases too short to\namortize "
                 "it (decisive on gcc/s, where every policy that "
                 "switches loses).\n";
    return 0;
}
