/**
 * @file
 * Phase-guided cache reconfiguration example.
 *
 * One of the motivating applications of phase tracking (paper
 * section 1, citing Balasubramonian et al. and Dhodapkar & Smith):
 * dynamically shrink the L1 data cache during phases that do not
 * need it, saving energy with negligible slowdown.
 *
 * This example simulates the same workload on three L1D
 * configurations (16K/8K/4K), classifies the 16K run into phases,
 * and compares:
 *   - fixed 16K (baseline performance, highest energy),
 *   - oracle per-interval best (upper bound),
 *   - phase-guided: each stable phase uses the smallest
 *     configuration whose phase-average CPI stays within 2% of the
 *     16K configuration; the transition phase conservatively uses
 *     16K.
 *
 * Energy proxy: per-interval energy proportional to the active cache
 * size. CPI/energy are reported relative to the fixed-16K baseline.
 *
 * Usage: cache_reconfig [workload]   (default: gzip/p)
 */

#include <iostream>
#include <map>
#include <string>

#include "analysis/experiment.hh"
#include "common/ascii_table.hh"
#include "common/running_stats.hh"
#include "phase/classifier_config.hh"
#include "trace/profile_cache.hh"
#include "workload/workload.hh"

using namespace tpcp;

namespace
{

constexpr std::uint64_t configsBytes[] = {16 * 1024, 8 * 1024,
                                          4 * 1024};
constexpr std::size_t numConfigs = 3;
constexpr double slackAllowed = 0.02; // 2% CPI degradation budget

/** Relative energy of each configuration (proportional to size). */
double
energyOf(std::size_t cfg_idx)
{
    return static_cast<double>(configsBytes[cfg_idx]) /
           static_cast<double>(configsBytes[0]);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "gzip/p";
    if (!workload::isWorkloadName(name)) {
        std::cerr << "unknown workload '" << name << "'\n";
        return 1;
    }
    std::cout << "== phase-guided L1D reconfiguration on " << name
              << " ==\n";
    std::cout << "simulating 3 cache configurations (cached after "
                 "the first run)...\n";

    workload::Workload w = workload::makeWorkload(name);
    std::vector<trace::IntervalProfile> profiles;
    for (std::size_t c = 0; c < numConfigs; ++c) {
        trace::ProfileOptions opts;
        opts.coreName = "simple"; // fast; relative CPI is preserved
        opts.machine.dcache.sizeBytes = configsBytes[c];
        profiles.push_back(trace::getProfile(w, opts));
    }
    std::size_t n = profiles[0].numIntervals();
    for (const auto &p : profiles) {
        if (p.numIntervals() != n) {
            std::cerr << "interval count mismatch across configs\n";
            return 1;
        }
    }

    // Classify the full-size run (code signatures are identical
    // across configurations - the paper's point that phase IDs
    // survive hardware reconfiguration).
    analysis::ClassificationResult res = analysis::classifyProfile(
        profiles[0], phase::ClassifierConfig::paperDefault());

    // Per-phase mean CPI under each configuration.
    std::map<PhaseId, std::vector<RunningStats>> phase_cpi;
    for (std::size_t i = 0; i < n; ++i) {
        auto &stats = phase_cpi[res.trace.phases[i]];
        stats.resize(numConfigs);
        for (std::size_t c = 0; c < numConfigs; ++c)
            stats[c].push(profiles[c].interval(i).cpi);
    }

    // Pick the smallest config within the slack for each phase.
    std::map<PhaseId, std::size_t> chosen;
    for (auto &[id, stats] : phase_cpi) {
        std::size_t pick = 0;
        if (id != transitionPhaseId) {
            double base = stats[0].mean();
            for (std::size_t c = numConfigs; c-- > 1;) {
                if (stats[c].mean() <= base * (1.0 + slackAllowed)) {
                    pick = c;
                    break;
                }
            }
        }
        chosen[id] = pick;
    }

    // Evaluate the three policies.
    double fixed_cycles = 0, fixed_energy = 0;
    double oracle_cycles = 0, oracle_energy = 0;
    double phase_cycles = 0, phase_energy = 0;
    for (std::size_t i = 0; i < n; ++i) {
        double insts = static_cast<double>(
            profiles[0].interval(i).insts);
        // Fixed 16K.
        fixed_cycles += profiles[0].interval(i).cpi * insts;
        fixed_energy += energyOf(0);
        // Oracle: smallest config within slack for *this interval*.
        std::size_t best = 0;
        for (std::size_t c = numConfigs; c-- > 1;) {
            if (profiles[c].interval(i).cpi <=
                profiles[0].interval(i).cpi * (1.0 + slackAllowed)) {
                best = c;
                break;
            }
        }
        oracle_cycles += profiles[best].interval(i).cpi * insts;
        oracle_energy += energyOf(best);
        // Phase-guided.
        std::size_t pick = chosen[res.trace.phases[i]];
        phase_cycles += profiles[pick].interval(i).cpi * insts;
        phase_energy += energyOf(pick);
    }

    AsciiTable table({"policy", "rel. runtime", "rel. L1D energy"});
    table.row().cell("fixed 16K").cell(1.0, 3).cell(1.0, 3);
    table.row()
        .cell("phase-guided")
        .cell(phase_cycles / fixed_cycles, 3)
        .cell(phase_energy / fixed_energy, 3);
    table.row()
        .cell("oracle per-interval")
        .cell(oracle_cycles / fixed_cycles, 3)
        .cell(oracle_energy / fixed_energy, 3);
    table.print(std::cout);

    std::cout << "\nPhases using each configuration:";
    std::map<std::size_t, int> counts;
    for (const auto &[id, pick] : chosen)
        ++counts[pick];
    for (std::size_t c = 0; c < numConfigs; ++c)
        std::cout << " " << configsBytes[c] / 1024 << "K:"
                  << counts[c];
    std::cout << "\nPhase-guided reconfiguration approaches the "
                 "oracle's energy saving while\nstaying within the "
              << slackAllowed * 100 << "% slowdown budget.\n";
    return 0;
}
