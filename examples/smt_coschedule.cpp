/**
 * @file
 * Phase-aware symbiotic SMT co-scheduling sketch.
 *
 * The paper's introduction motivates 10M-instruction intervals with
 * phase-based task scheduling, citing symbiotic job scheduling on
 * SMT machines (Snavely & Tullsen). This example demonstrates the
 * idea: classify two workloads into phases, characterize each phase
 * as CPU-bound or memory-bound from its CPI, and compare the
 * throughput of phase-aware pairing against phase-oblivious
 * time-slicing under a simple SMT contention model.
 *
 * Contention model: co-running two threads multiplies each thread's
 * CPI by (1 + c) where c depends on resource overlap - two
 * memory-bound phases fight for the memory system and each run more
 * than twice as slow (c = 1.5, so co-running them is a net loss),
 * two CPU-bound phases fight for issue slots (c = 0.8), and a mixed
 * pair coexists well (c = 0.15).
 *
 * Usage: smt_coschedule [workloadA] [workloadB]
 *        (defaults: mcf gzip/p)
 */

#include <iostream>
#include <map>
#include <string>

#include "analysis/experiment.hh"
#include "common/ascii_table.hh"
#include "common/running_stats.hh"
#include "phase/classifier_config.hh"
#include "trace/profile_cache.hh"
#include "workload/workload.hh"

using namespace tpcp;

namespace
{

struct ThreadPhases
{
    analysis::ClassificationResult res;
    std::map<PhaseId, RunningStats> cpi;
    /** Phases slower than this are considered memory-bound. */
    double slowCutoff = 0.0;

    bool
    memoryBound(std::size_t i) const
    {
        auto it = cpi.find(res.trace.phases[i]);
        return it != cpi.end() && it->second.mean() > slowCutoff;
    }
};

ThreadPhases
analyze(const std::string &name)
{
    ThreadPhases t;
    trace::IntervalProfile prof = trace::getProfileByName(name);
    t.res = analysis::classifyProfile(
        prof, phase::ClassifierConfig::paperDefault());
    for (std::size_t i = 0; i < t.res.trace.size(); ++i)
        t.cpi[t.res.trace.phases[i]].push(t.res.trace.cpis[i]);
    // Midpoint between the fastest and slowest phase adapts the
    // classification to mostly-fast and mostly-slow workloads alike.
    double lo = 1e30, hi = 0.0;
    for (const auto &[id, stats] : t.cpi) {
        lo = std::min(lo, stats.mean());
        hi = std::max(hi, stats.mean());
    }
    t.slowCutoff = 0.5 * (lo + hi);
    return t;
}

/** SMT contention factor for a pair of phase characters. */
double
contention(bool a_mem, bool b_mem)
{
    if (a_mem && b_mem)
        return 1.5; // memory system conflict: worse than slicing
    if (!a_mem && !b_mem)
        return 0.8; // issue-bandwidth conflict: co-run still wins
    return 0.15;    // symbiotic pair
}

} // namespace

int
main(int argc, char **argv)
{
    std::string name_a = argc > 1 ? argv[1] : "mcf";
    std::string name_b = argc > 2 ? argv[2] : "gzip/p";
    if (!workload::isWorkloadName(name_a) ||
        !workload::isWorkloadName(name_b)) {
        std::cerr << "unknown workload\n";
        return 1;
    }
    std::cout << "== phase-aware SMT co-scheduling: " << name_a
              << " + " << name_b << " ==\n";

    ThreadPhases a = analyze(name_a);
    ThreadPhases b = analyze(name_b);
    std::size_t n =
        std::min(a.res.trace.size(), b.res.trace.size());

    // Policy 1: oblivious co-run - always run both threads together
    // regardless of phase character.
    double oblivious_ipc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        double c = contention(a.memoryBound(i), b.memoryBound(i));
        double cpi_a = a.res.trace.cpis[i] * (1.0 + c);
        double cpi_b = b.res.trace.cpis[i] * (1.0 + c);
        oblivious_ipc += 1.0 / cpi_a + 1.0 / cpi_b;
    }

    // Policy 2: phase-aware - when the classifier says both threads
    // are in memory-bound phases (the destructive pairing), fall
    // back to time-slicing them; otherwise co-run.
    double aware_ipc = 0.0;
    std::uint64_t sliced = 0;
    for (std::size_t i = 0; i < n; ++i) {
        bool am = a.memoryBound(i);
        bool bm = b.memoryBound(i);
        if (am && bm) {
            // Time-slice: each thread runs alone half the time.
            aware_ipc += 0.5 / a.res.trace.cpis[i] +
                         0.5 / b.res.trace.cpis[i];
            ++sliced;
        } else {
            double c = contention(am, bm);
            aware_ipc += 1.0 / (a.res.trace.cpis[i] * (1.0 + c)) +
                         1.0 / (b.res.trace.cpis[i] * (1.0 + c));
        }
    }

    AsciiTable table({"policy", "throughput (IPC sum)", "vs oblivious"});
    table.row()
        .cell("phase-oblivious co-run")
        .cell(oblivious_ipc / static_cast<double>(n), 3)
        .cell(1.0, 3);
    table.row()
        .cell("phase-aware")
        .cell(aware_ipc / static_cast<double>(n), 3)
        .cell(aware_ipc / oblivious_ipc, 3);
    table.print(std::cout);
    std::cout << "\nIntervals where the phase-aware policy "
                 "time-sliced instead of co-running: "
              << sliced << " / " << n << "\n";
    std::cout << "Phase IDs let the scheduler recognize destructive "
                 "pairings *before*\nrunning them - the phase-based "
                 "task scheduling the paper targets.\n";
    return 0;
}
