/**
 * @file
 * Quickstart: simulate one synthetic workload on the Table-1 machine,
 * classify its execution into phases with the paper's preferred
 * configuration, and print a phase timeline plus summary metrics.
 *
 * Usage: quickstart [workload] [interval-insts]
 *   workload       one of the 11 names (default: gzip/p)
 *   interval-insts instructions per interval (default: 100000)
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "analysis/experiment.hh"
#include "common/ascii_table.hh"
#include "phase/classifier_config.hh"
#include "phase/phase_trace.hh"
#include "trace/profile_cache.hh"
#include "workload/workload.hh"

using namespace tpcp;

namespace
{

/** Renders a phase ID as a single character for the timeline. */
char
phaseChar(PhaseId id)
{
    if (id == transitionPhaseId)
        return '.';
    static const char glyphs[] =
        "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";
    return glyphs[(id - 1) % (sizeof(glyphs) - 1)];
}

} // namespace

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "gzip/p";
    InstCount interval =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 100'000;

    if (!workload::isWorkloadName(name)) {
        std::cerr << "unknown workload '" << name << "'; choose one of:";
        for (const auto &n : workload::workloadNames())
            std::cerr << " " << n;
        std::cerr << "\n";
        return 1;
    }

    std::cout << "== tpcp quickstart ==\n";
    std::cout << "workload: " << name << ", interval: " << interval
              << " instructions\n";

    workload::Workload w = workload::makeWorkload(name);
    std::cout << "program: " << w.program.blocks.size()
              << " basic blocks, " << w.program.regions.size()
              << " regions, " << w.totalInsts() / 1'000'000
              << "M scheduled instructions\n";
    std::cout << "simulating (cached after the first run)...\n";

    trace::ProfileOptions opts;
    opts.intervalLen = interval;
    trace::IntervalProfile profile = trace::getProfile(w, opts);
    std::cout << "profiled " << profile.numIntervals()
              << " intervals on the '" << profile.coreName()
              << "' core\n\n";

    phase::ClassifierConfig cfg =
        phase::ClassifierConfig::paperDefault();
    analysis::ClassificationResult res =
        analysis::classifyProfile(profile, cfg);

    std::cout << "phase timeline ('.' = transition phase, one char "
                 "per interval,\nwrapped at 80):\n";
    const auto &ids = res.trace.phases;
    for (std::size_t i = 0; i < ids.size(); ++i) {
        std::cout << phaseChar(ids[i]);
        if ((i + 1) % 80 == 0)
            std::cout << '\n';
    }
    std::cout << "\n\n";

    AsciiTable table({"metric", "value"});
    table.row().cell("stable phases detected")
        .cell(static_cast<std::uint64_t>(res.numPhases));
    table.row().cell("per-phase CPI CoV").percentCell(res.covCpi);
    table.row().cell("whole-program CPI CoV")
        .percentCell(res.wholeProgramCov);
    table.row().cell("time in transition phase")
        .percentCell(res.transitionFraction);
    table.row().cell("avg stable run (intervals)")
        .cell(res.runLengths.stableAvg, 1);
    table.row().cell("avg transition run (intervals)")
        .cell(res.runLengths.transitionAvg, 1);
    table.print(std::cout);
    return 0;
}
