#!/bin/sh
# Regenerate the checked-in golden stdout captures in tests/golden/.
#
# Run from the repository root after an *intentional* behavior
# change (a model bugfix that legitimately moves the numbers), never
# to paper over an unexplained CI diff. Rebuilds first so a stale
# binary can't be captured, runs every golden harness at --jobs=1
# (the CI reference), and prints a git diff summary of what moved.
#
# Usage: tools/regen_golden.sh [build-dir]   (default: build)

set -eu

build=${1:-build}
golden=tests/golden

if [ ! -f "$golden/README.md" ]; then
    echo "error: run from the repository root" >&2
    exit 1
fi
if [ ! -d "$build" ]; then
    echo "error: no build directory '$build' (cmake -B $build)" >&2
    exit 1
fi

harnesses="fig2_table_size abl_bitsel fig4_transition_phase \
fig7_next_phase fig8_sweep adversarial_sweep"

cmake --build "$build" --target $harnesses

for h in $harnesses; do
    echo "regenerating $golden/$h.stdout" >&2
    case $h in
    adversarial_sweep)
        # Captured with the CI floors so the "all rows meet their
        # family floors" trailer is part of the golden.
        "./$build/bench/$h" --jobs=1 \
            --floors=bench/adversarial_floors.txt \
            > "$golden/$h.stdout"
        ;;
    *)
        "./$build/bench/$h" --jobs=1 > "$golden/$h.stdout"
        ;;
    esac
done
# The sweeps also write their JSON dumps (each stdout golden
# references the default path, so it can't be disabled with
# --json=-).
rm -f fig8_sweep.json adversarial_sweep.json

# Drift check: every golden stdout the CI workflow diffs against
# must be one this script regenerates — otherwise a renamed or
# added harness silently orphans its checked-in capture.
drifted=0
for ref in $(grep -o 'tests/golden/[A-Za-z0-9_]*\.stdout' \
                 .github/workflows/ci.yml | sort -u); do
    name=${ref#tests/golden/}
    name=${name%.stdout}
    case " $harnesses " in
    *" $name "*) ;;
    *)
        echo "error: ci.yml diffs $ref but this script does not" \
             "regenerate it (add it to \$harnesses)" >&2
        drifted=1
        ;;
    esac
done
[ "$drifted" -eq 0 ] || exit 1

echo >&2
echo "golden diff (empty means outputs were already current):" >&2
git --no-pager diff --stat -- "$golden"
