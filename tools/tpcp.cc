/**
 * @file
 * tpcp - command-line front end to the library.
 *
 * Subcommands:
 *   workloads                       list the built-in workloads
 *   machine                         print the Table-1 machine model
 *   profile  <workload> [opts]     simulate/load a profile, summarize
 *   classify <workload> [opts]     classify and print phase metrics
 *   predict  <workload> [opts]     next-phase / change prediction
 *   export   <workload> [opts]     per-interval CSV for plotting
 *   simstats <workload> [opts]     run the simulator, dump uarch stats
 *   sample   [workloads...] [opts] phase-guided sampled simulation
 *   adapt    [workloads...] [opts] phase-guided dynamic reconfiguration
 *   faults   [workloads...] [opts] soft-error resilience measurement
 *   trace    <verb> [opts]         .tpcptrace ingest/export tooling
 *
 * Common options:
 *   --interval N     instructions per interval   (default 100000)
 *   --core NAME      'ooo' or 'simple'           (default ooo)
 *   --jobs N         worker threads for 'profile all'
 *                    (0 = one per hardware thread; default 0)
 *   --trace F[,F...] analyze ingested .tpcptrace files instead of
 *                    named workloads (profile/classify/predict/
 *                    export take one file; sample/adapt/faults/serve
 *                    take a comma-separated list; adapt replays
 *                    recorded CPI, so its lattice differs in energy
 *                    only)
 *
 * Trace verbs (tpcp trace <verb>):
 *   export <workload> --out=P     export a profile as a .tpcptrace
 *          [--source=S]           (with --trace=IN: re-export the
 *                                 ingested trace byte-identically)
 *   info <file>                   print the validated trace header
 *                                 and content hash
 *   gen --out=P [--family=F]      generate an adversarial stressor
 *       [--seed=N] [--intervals=N] stream (see 'tpcp trace gen
 *       [--interval=N]            --family=help' for families)
 *   corpus <dir>                  write the deterministic corruption
 *                                 corpus + MANIFEST used by the
 *                                 trace-hardening CI job
 *
 * 'profile all' builds/loads every workload profile (in parallel
 * with --jobs) and prints a one-line summary per workload; use it to
 * warm a shared $TPCP_PROFILE_DIR before a figure-suite run. A
 * workload whose profile cannot be produced (e.g. a corrupt cache
 * file under --require-cache) is skipped and reported in a
 * per-workload error summary at the end; the exit code is 3 when
 * some-but-not-all workloads failed.
 * Profile options:
 *   --require-cache  fail a workload instead of re-simulating when
 *                    its cache file is missing/corrupt/mismatched
 * Classify options:
 *   --threshold X    similarity threshold        (default 0.25)
 *   --min N          transition min count        (default 8)
 *   --entries N      signature table entries     (default 32)
 *   --dims N         accumulator counters        (default 16)
 *   --static-thresh  disable adaptive thresholds
 *   --timeline       print the phase timeline
 * Predict options:
 *   --predictor P    lastvalue | markov1 | markov2 | rle1 | rle2 |
 *                    top4markov1 | last4markov1 | tage |
 *                    perceptron                  (default rle2)
 * Export options:
 *   --out PATH       output CSV file             (default stdout)
 * Simstats options:
 *   --max-insts N    stop after N instructions   (default: full run)
 * Sample options (no workloads named = all 11, in parallel):
 *   --budget N       detailed intervals per workload (default 16)
 *   --selector S     first | centroid | stratified | uniform |
 *                    random                      (default stratified)
 *   --phase-source P online | offline            (default online)
 *   --json PATH      write SampleReport records as JSON
 *                    ('-' disables)
 *   --max-error X    exit 1 if any CPI estimate is off by more
 *                    than fraction X (CI tripwire)
 * Adapt options (no workloads named = all 11, in parallel; the core
 * defaults to 'simple' since each lattice point is a full sim):
 *   --policy P       greedy | greedy-nopred | greedy-tage |
 *                    greedy-perceptron           (default greedy)
 *   --lattice L      standard | small            (default standard)
 *   --json PATH      write AdaptReport records as JSON
 *                    ('-' disables)
 *   --min-oracle X   exit 1 if any workload's greedy policy reaches
 *                    less than fraction X of the oracle's EDP
 *                    savings (CI tripwire)
 * Faults options (no workloads named = all 11, in parallel):
 *   --target T       accum | signature | metadata | change-table |
 *                    length-table | input | all   (default all)
 *   --predictor P    change predictor under fault: markov1 | rle2 |
 *                    last4markov1 | tage | perceptron | ...
 *                    (default rle2)
 *   --rate X         per-interval fault probability (default 0.01)
 *   --mitigated      enable the hardening model (parity-protected
 *                    signature table with scrubbing and repair, ECC
 *                    detect-and-contain predictor tables, CPI
 *                    plausibility gate)
 *   --seed N         fault campaign seed
 *   --scrub-every N  mitigated scrub period in intervals (default 1)
 *   --adapt          also measure the adapt-layer oracle-fraction
 *                    delta (simulates the lattice; prefer
 *                    --core simple)
 *   --json PATH      write ResilienceReport records as JSON
 *                    ('-' disables)
 *   --min-agreement X  exit 1 if any workload's phase-ID agreement
 *                    falls below fraction X (CI tripwire)
 *   --checkpoint PATH  checkpoint file (single workload only)
 *   --checkpoint-at K  save the checkpoint and stop after K intervals
 *   --resume         resume the faulty run from --checkpoint
 * Serve options (streaming multi-tenant phase service; named
 * workloads become the replayed interval streams, none = synthetic):
 *   --tenants N      concurrent tenants           (default 8)
 *   --producers P    producer rings/threads       (default 1)
 *   --packets N      packets per tenant stream (cap for profile
 *                    streams, length for synthetic; default 2000,
 *                    0 = full profile)
 *   --streams K      distinct synthetic streams   (default 4)
 *   --resident N     resident tenants per partition (0 = fit all
 *                    assigned tenants; default 0)
 *   --evict-after N  evict a tenant idle for N delivered packets
 *                    (default 0 = no idle eviction)
 *   --checkpoint-dir D  eviction checkpoint directory
 *                    (default serve_ckpt)
 *   --ring-bytes B   per-producer ring capacity   (default 1 MiB)
 *   --drop           drop packets on a full ring (counted, visible
 *                    as sequence gaps) instead of parking
 *   --park-retries N park retry budget per push; when exhausted the
 *                    push escalates to a counted drop (default 0 =
 *                    park forever, lossless)
 *   --rate-limit R   per-tenant token-bucket refill, packets per
 *                    drain cycle (default 0 = unlimited)
 *   --burst B        token-bucket capacity (default 0 = rate-limit)
 *   --drr-quantum Q  deficit-round-robin quantum, packets
 *                    (default 16)
 *   --max-backlog N  staged frames per tenant before arrivals are
 *                    shed, counted (default 0 = unbounded)
 *   --cycle-budget N frames delivered per partition per drain cycle
 *                    (default 0 = drain batch)
 *   --quarantine-threshold N  offenses (duplicate seq, malformed,
 *                    shed, resume failure) within one window that
 *                    quarantine a tenant (default 0 = disabled)
 *   --quarantine-window W     offense window, packets seen
 *                    (default 1024)
 *   --quarantine-backoff B    first quarantine length, packets seen;
 *                    doubles per re-quarantine (default 256)
 *   --quarantine-backoff-cap C  backoff ceiling (default 1 Mi)
 *   --migrate-out DIR  after the run, evict every tenant and write a
 *                    crash-consistent migration bundle
 *   --migrate-in DIR before the run, validate the bundle and adopt
 *                    its tenants (damaged bundles are rejected with
 *                    exit 1, nothing partially applied)
 *   --packet-base K  start replaying each stream at interval K
 *                    (sequence numbers stay absolute: the handoff
 *                    half of a migration identity check)
 *   --phase-out DIR  record per-tenant phase-ID streams and write
 *                    one tenant_<id>.phases file per tenant
 *   --batch          with --phase-out: write the batch-reference
 *                    streams instead of running the service (CI
 *                    diffs the two directories byte-for-byte)
 *   --json PATH      write the ServeReport as JSON ('-' disables)
 *   --min-rate R     exit 1 if delivered packets/s fall below R
 *                    (CI tripwire)
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "adapt/report.hh"
#include "analysis/experiment.hh"
#include "analysis/parallel_runner.hh"
#include "fault/resilience.hh"
#include "common/ascii_table.hh"
#include "common/logging.hh"
#include "common/running_stats.hh"
#include "common/status.hh"
#include "pred/eval.hh"
#include "sample/report.hh"
#include "common/state_io.hh"
#include "serve/service.hh"
#include "trace/profile_cache.hh"
#include "trace/trace_file.hh"
#include "trace/trace_workload.hh"
#include "workload/adversarial.hh"
#include "uarch/machine_config.hh"
#include "uarch/ooo_core.hh"
#include "uarch/simple_core.hh"
#include "uarch/simulator.hh"
#include "uarch/stats_report.hh"
#include "workload/workload.hh"

using namespace tpcp;

namespace
{

/** Minimal flag parser: --key value and --key style flags. */
class Args
{
  public:
    Args(int argc, char **argv, int first)
    {
        for (int i = first; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg.rfind("--", 0) == 0) {
                std::string key = arg.substr(2);
                if (auto eq = key.find('=');
                    eq != std::string::npos) {
                    kv[key.substr(0, eq)] = key.substr(eq + 1);
                } else if (i + 1 < argc &&
                           std::string(argv[i + 1]).rfind("--", 0) !=
                               0) {
                    kv[key] = argv[++i];
                } else {
                    kv[key] = "";
                }
            } else {
                positional.push_back(arg);
            }
        }
    }

    bool has(const std::string &key) const { return kv.count(key); }

    std::string
    get(const std::string &key, const std::string &dflt) const
    {
        auto it = kv.find(key);
        return it == kv.end() ? dflt : it->second;
    }

    std::uint64_t
    getU64(const std::string &key, std::uint64_t dflt) const
    {
        auto it = kv.find(key);
        return it == kv.end()
                   ? dflt
                   : std::strtoull(it->second.c_str(), nullptr, 10);
    }

    double
    getDouble(const std::string &key, double dflt) const
    {
        auto it = kv.find(key);
        return it == kv.end()
                   ? dflt
                   : std::strtod(it->second.c_str(), nullptr);
    }

    std::vector<std::string> positional;

  private:
    std::map<std::string, std::string> kv;
};

int
usage()
{
    std::cerr
        << "usage: tpcp <command> [args]\n"
           "  workloads | machine | profile <wl> | classify <wl> |\n"
           "  predict <wl> | export <wl> | sample [wl...] |\n"
           "  adapt [wl...] | faults [wl...] | serve [wl...] |\n"
           "  trace <export|info|gen|corpus>\n"
           "most commands also take --trace=FILE[,FILE...] to run\n"
           "on ingested .tpcptrace files instead of workloads\n"
           "see the header of tools/tpcp.cc for all options\n";
    return 2;
}

std::optional<std::string>
requireWorkload(const Args &args)
{
    if (args.positional.empty()) {
        std::cerr << "error: a workload name is required\n";
        return std::nullopt;
    }
    const std::string &name = args.positional.front();
    if (!workload::isWorkloadName(name)) {
        std::cerr << "error: unknown workload '" << name
                  << "'; run 'tpcp workloads'\n";
        return std::nullopt;
    }
    return name;
}

trace::ProfileOptions
profileOptions(const Args &args)
{
    trace::ProfileOptions opts;
    opts.intervalLen = args.getU64("interval", 100'000);
    opts.coreName = args.get("core", "ooo");
    opts.requireCache = args.has("require-cache");
    return opts;
}

/**
 * The profile a single-workload command operates on: the ingested
 * trace named by --trace when given (a trace is a first-class
 * workload), the cached/simulated profile of the named workload
 * otherwise. nullopt (after printing the error) on bad usage.
 */
std::optional<trace::IntervalProfile>
inputProfile(const Args &args)
{
    if (args.has("trace")) {
        if (!args.positional.empty()) {
            std::cerr << "error: --trace and a workload name are "
                         "mutually exclusive\n";
            return std::nullopt;
        }
        return trace::getTraceProfile(args.get("trace", ""));
    }
    auto name = requireWorkload(args);
    if (!name)
        return std::nullopt;
    return trace::getProfileByName(*name, profileOptions(args));
}

/**
 * Expands --trace for the multi-workload commands: loads every
 * listed trace, appending (name, profile) in argument order. The
 * commands keep their workload-name path when --trace is absent.
 * False (after printing the error) when --trace is combined with
 * positional workload names.
 */
bool
loadTraceInputs(const Args &args, std::vector<std::string> &names,
                std::vector<trace::IntervalProfile> &profiles)
{
    if (!args.has("trace"))
        return true;
    if (!names.empty()) {
        std::cerr << "error: --trace and workload names are "
                     "mutually exclusive\n";
        return false;
    }
    for (auto &[name, profile] :
         trace::loadTraceProfiles(args.get("trace", ""))) {
        names.push_back(name);
        profiles.push_back(std::move(profile));
    }
    if (names.empty()) {
        std::cerr << "error: --trace expects at least one "
                     ".tpcptrace path\n";
        return false;
    }
    return true;
}

phase::ClassifierConfig
classifierConfig(const Args &args)
{
    phase::ClassifierConfig cfg =
        phase::ClassifierConfig::paperDefault();
    cfg.similarityThreshold = args.getDouble("threshold", 0.25);
    cfg.minCountThreshold =
        static_cast<unsigned>(args.getU64("min", 8));
    cfg.tableEntries =
        static_cast<unsigned>(args.getU64("entries", 32));
    cfg.numCounters =
        static_cast<unsigned>(args.getU64("dims", 16));
    if (args.has("static-thresh"))
        cfg.adaptiveThreshold = false;
    return cfg;
}

int
cmdWorkloads()
{
    AsciiTable table({"name", "regions", "insts(M)", "description"});
    for (const auto &name : workload::workloadNames()) {
        workload::Workload w = workload::makeWorkload(name);
        table.row()
            .cell(name)
            .cell(static_cast<std::uint64_t>(
                w.program.regions.size()))
            .cell(static_cast<std::uint64_t>(w.totalInsts() /
                                             1'000'000))
            .cell(w.description);
    }
    table.print(std::cout);
    return 0;
}

int
cmdMachine()
{
    std::cout << uarch::MachineConfig::table1().toString();
    return 0;
}

int
cmdProfileAll(const Args &args)
{
    unsigned jobs =
        static_cast<unsigned>(args.getU64("jobs", 0));
    trace::ProfileOptions opts = profileOptions(args);
    const std::vector<std::string> &names =
        workload::workloadNames();
    std::cerr << "building/loading " << names.size()
              << " profiles ("
              << analysis::effectiveJobs(jobs, names.size())
              << " jobs) ...\n";
    // Graceful degradation: one bad workload (corrupt cache file
    // under --require-cache, unknown core, ...) is skipped and
    // reported at the end instead of aborting the whole batch. Each
    // task writes only its own error slot, so the vector needs no
    // lock.
    std::vector<std::string> errors(names.size());
    auto profiles = analysis::runIndexed(
        names.size(), jobs,
        [&](std::size_t i) -> std::optional<trace::IntervalProfile> {
            try {
                return trace::getProfileByName(names[i], opts);
            } catch (const Error &e) {
                errors[i] = e.what();
                return std::nullopt;
            }
        });
    AsciiTable table(
        {"workload", "intervals", "avg CPI", "CoV"});
    std::size_t failed = 0;
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (!profiles[i]) {
            ++failed;
            table.row().cell(names[i]).cell("-").cell("-").cell(
                "FAILED");
            continue;
        }
        RunningStats cpi;
        for (const auto &rec : profiles[i]->intervals())
            cpi.push(rec.cpi);
        table.row()
            .cell(names[i])
            .cell(static_cast<std::uint64_t>(
                profiles[i]->numIntervals()))
            .cell(cpi.mean(), 3)
            .percentCell(cpi.cov());
    }
    table.print(std::cout);
    trace::ProfileCacheStats stats = trace::profileCacheStats();
    std::cout << "cache: " << stats.hits << " hits, " << stats.builds
              << " builds, " << stats.rejects << " rejects\n";
    if (failed != 0) {
        std::cerr << "error: " << failed << " of " << names.size()
                  << " workloads failed:\n";
        for (std::size_t i = 0; i < names.size(); ++i)
            if (!errors[i].empty())
                std::cerr << "  " << names[i] << ": " << errors[i]
                          << "\n";
        // 3 = partial failure: some profiles were still produced.
        return failed == names.size() ? 1 : 3;
    }
    return 0;
}

int
cmdProfile(const Args &args)
{
    if (!args.positional.empty() &&
        args.positional.front() == "all")
        return cmdProfileAll(args);
    auto loaded = inputProfile(args);
    if (!loaded)
        return 2;
    trace::IntervalProfile profile = std::move(*loaded);
    RunningStats cpi;
    for (const auto &rec : profile.intervals())
        cpi.push(rec.cpi);
    AsciiTable table({"metric", "value"});
    table.row().cell("workload").cell(profile.workload());
    table.row().cell("core").cell(profile.coreName());
    table.row()
        .cell("interval length")
        .cell(static_cast<std::uint64_t>(profile.intervalLength()));
    table.row()
        .cell("intervals")
        .cell(static_cast<std::uint64_t>(profile.numIntervals()));
    table.row().cell("avg CPI").cell(cpi.mean(), 3);
    table.row().cell("min / max CPI").cell(
        std::to_string(cpi.min()).substr(0, 5) + " / " +
        std::to_string(cpi.max()).substr(0, 5));
    table.row().cell("whole-program CoV").percentCell(cpi.cov());
    table.print(std::cout);
    return 0;
}

char
phaseChar(PhaseId id)
{
    if (id == transitionPhaseId)
        return '.';
    static const char glyphs[] =
        "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";
    return glyphs[(id - 1) % (sizeof(glyphs) - 1)];
}

int
cmdClassify(const Args &args)
{
    auto profile = inputProfile(args);
    if (!profile)
        return 2;
    analysis::ClassificationResult res =
        analysis::classifyProfile(*profile, classifierConfig(args));

    if (args.has("timeline")) {
        for (std::size_t i = 0; i < res.trace.size(); ++i) {
            std::cout << phaseChar(res.trace.phases[i]);
            if ((i + 1) % 80 == 0)
                std::cout << '\n';
        }
        std::cout << "\n\n";
    }

    AsciiTable table({"metric", "value"});
    table.row().cell("stable phases").cell(
        static_cast<std::uint64_t>(res.numPhases));
    table.row().cell("per-phase CPI CoV").percentCell(res.covCpi);
    table.row()
        .cell("whole-program CoV")
        .percentCell(res.wholeProgramCov);
    table.row()
        .cell("transition time")
        .percentCell(res.transitionFraction);
    table.row()
        .cell("avg stable run")
        .cell(res.runLengths.stableAvg, 1);
    table.row()
        .cell("avg transition run")
        .cell(res.runLengths.transitionAvg, 1);
    table.row()
        .cell("threshold halvings")
        .cell(res.classifierStats.thresholdHalvings);
    table.print(std::cout);
    return 0;
}

int
cmdPredict(const Args &args)
{
    auto profile = inputProfile(args);
    if (!profile)
        return 2;
    analysis::ClassificationResult res =
        analysis::classifyProfile(*profile, classifierConfig(args));

    std::string pname = args.get("predictor", "rle2");
    std::optional<pred::PredictorSpec> spec =
        pred::predictorSpecByName(pname);
    pred::NextPhaseStats next =
        spec ? pred::evalNextPhase(res.trace.phases, *spec)
             : pred::evalNextPhase(res.trace.phases, std::nullopt);

    AsciiTable table({"metric", "value"});
    table.row().cell("predictor").cell(
        spec ? spec->displayName() : "Last Value");
    table.row().cell("next-phase accuracy").percentCell(
        next.accuracy());
    table.row()
        .cell("confident accuracy")
        .percentCell(next.confidentAccuracy());
    table.row()
        .cell("confident coverage")
        .percentCell(next.confidentCoverage());
    table.row().cell("interval change rate").percentCell(
        next.total ? static_cast<double>(next.phaseChanges) /
                         static_cast<double>(next.total)
                   : 0.0);
    if (spec) {
        pred::ChangeOutcomeStats ch =
            pred::evalChangeOutcome(res.trace.phases, *spec);
        table.row()
            .cell("phase changes predicted")
            .percentCell(ch.correctRate());
        table.row()
            .cell("change tag-miss rate")
            .percentCell(ch.changes
                             ? static_cast<double>(ch.tagMiss) /
                                   static_cast<double>(ch.changes)
                             : 0.0);
    }
    pred::RunLengthStats rl = pred::evalRunLength(res.trace.phases);
    table.row()
        .cell("length-class mispredict")
        .percentCell(rl.mispredictRate());
    table.print(std::cout);
    return 0;
}

int
cmdExport(const Args &args)
{
    auto profile = inputProfile(args);
    if (!profile)
        return 2;
    analysis::ClassificationResult res =
        analysis::classifyProfile(*profile, classifierConfig(args));

    std::ofstream file;
    std::ostream *out = &std::cout;
    std::string path = args.get("out", "");
    if (!path.empty()) {
        file.open(path);
        if (!file) {
            std::cerr << "error: cannot open " << path << "\n";
            return 1;
        }
        out = &file;
    }
    *out << "interval,cpi,phase,is_transition\n";
    for (std::size_t i = 0; i < res.trace.size(); ++i) {
        *out << i << ',' << res.trace.cpis[i] << ','
             << res.trace.phases[i] << ','
             << (res.trace.phases[i] == transitionPhaseId ? 1 : 0)
             << '\n';
    }
    if (!path.empty())
        std::cout << "wrote " << res.trace.size()
                  << " intervals to " << path << "\n";
    return 0;
}

int
cmdSimStats(const Args &args)
{
    auto name = requireWorkload(args);
    if (!name)
        return 2;
    workload::Workload w = workload::makeWorkload(*name);
    auto schedule = w.makeSchedule();

    std::string core_name = args.get("core", "ooo");
    std::unique_ptr<uarch::TimingCore> core;
    uarch::MachineConfig machine = uarch::MachineConfig::table1();
    if (core_name == "ooo") {
        core = std::make_unique<uarch::OooCore>(machine);
    } else if (core_name == "simple") {
        core = std::make_unique<uarch::SimpleCore>(machine);
    } else {
        std::cerr << "error: unknown core '" << core_name << "'\n";
        return 2;
    }

    uarch::Simulator sim(w.program, *schedule, *core,
                         w.seed ^ 0xabcdef12345ULL);
    InstCount max_insts = args.getU64("max-insts", 0);
    std::cerr << "simulating " << *name << " on the '" << core_name
              << "' core...\n";
    sim.run(max_insts);
    std::cout << uarch::formatCoreStats(*core);
    return 0;
}

int
cmdSample(const Args &args)
{
    std::vector<std::string> names = args.positional;
    std::vector<trace::IntervalProfile> traced;
    if (!loadTraceInputs(args, names, traced))
        return 2;
    if (names.empty()) {
        names = workload::workloadNames();
    } else if (traced.empty()) {
        for (const std::string &name : names) {
            if (!workload::isWorkloadName(name)) {
                std::cerr << "error: unknown workload '" << name
                          << "'; run 'tpcp workloads'\n";
                return 2;
            }
        }
    }
    auto budget =
        static_cast<std::size_t>(args.getU64("budget", 16));
    if (budget == 0) {
        std::cerr << "error: --budget must be positive\n";
        return 2;
    }
    std::string selector = args.get("selector", "stratified");
    sample::PhaseSource source = sample::phaseSourceByName(
        args.get("phase-source", "online"));
    unsigned jobs = static_cast<unsigned>(args.getU64("jobs", 0));
    trace::ProfileOptions opts = profileOptions(args);

    std::cerr << "[sample] " << names.size() << " workloads, "
              << "selector=" << selector << ", budget=" << budget
              << " (" << analysis::effectiveJobs(jobs, names.size())
              << " jobs)\n";
    std::vector<sample::SampleReport> reports =
        analysis::runIndexed(
            names.size(), jobs, [&](std::size_t i) {
                trace::IntervalProfile profile =
                    traced.empty()
                        ? trace::getProfileByName(names[i], opts)
                        : traced[i];
                return sample::runSampledSimulation(
                    profile, selector, source, budget);
            });

    AsciiTable table({"workload", "phases", "sampled", "true CPI",
                      "est CPI", "error", "pred err", "speedup"});
    double worst = 0.0;
    for (const sample::SampleReport &r : reports) {
        table.row()
            .cell(r.workload)
            .cell(std::to_string(r.phasesCovered) + "/" +
                  std::to_string(r.phasesTotal))
            .cell(std::to_string(r.sampled) + "/" +
                  std::to_string(r.totalIntervals))
            .cell(r.trueCpi, 3)
            .cell(r.estimatedCpi, 3)
            .percentCell(r.relError)
            .percentCell(r.predictedRelError)
            .cell(r.speedupEquivalent(), 1);
        worst = std::max(worst, r.relError);
    }
    table.print(std::cout);

    // '-' disables, matching the bench harness convention.
    std::string json = args.get("json", "");
    if (!json.empty() && json != "-") {
        if (!sample::writeJson(json, reports)) {
            std::cerr << "error: cannot write " << json << "\n";
            return 1;
        }
        std::cout << "wrote " << reports.size() << " reports to "
                  << json << "\n";
    }
    if (args.has("max-error")) {
        double limit = args.getDouble("max-error", 0.0);
        if (worst > limit) {
            std::cerr << "error: worst CPI error "
                      << worst * 100.0 << "% exceeds --max-error "
                      << limit * 100.0 << "%\n";
            return 1;
        }
        std::cout << "worst CPI error " << worst * 100.0
                  << "% within --max-error " << limit * 100.0
                  << "%\n";
    }
    return 0;
}

int
cmdAdapt(const Args &args)
{
    std::vector<std::string> names = args.positional;
    std::vector<trace::IntervalProfile> traced;
    if (!loadTraceInputs(args, names, traced))
        return 2;
    if (names.empty()) {
        names = workload::workloadNames();
    } else if (traced.empty()) {
        for (const std::string &name : names) {
            if (!workload::isWorkloadName(name)) {
                std::cerr << "error: unknown workload '" << name
                          << "'; run 'tpcp workloads'\n";
                return 2;
            }
        }
    }
    adapt::PolicyPreset preset =
        adapt::policyPresetByName(args.get("policy", "greedy"));
    adapt::ConfigLattice lattice = adapt::ConfigLattice::byName(
        args.get("lattice", "standard"));
    unsigned jobs = static_cast<unsigned>(args.getU64("jobs", 0));
    trace::ProfileOptions opts = profileOptions(args);
    if (!args.has("core"))
        opts.coreName = "simple";

    std::cerr << "[adapt] " << names.size() << " workloads, "
              << "policy=" << preset.name
              << ", lattice=" << lattice.size() << " configs ("
              << analysis::effectiveJobs(jobs, names.size())
              << " jobs)\n";
    std::vector<adapt::AdaptReport> reports = analysis::runIndexed(
        names.size(), jobs, [&](std::size_t i) {
            // Traces replay in recorded-CPI mode (energy-only
            // lattice; see adapt/report.hh).
            if (!traced.empty())
                return adapt::runTraceAdaptation(traced[i], preset,
                                                 lattice);
            return adapt::runAdaptation(names[i], preset, lattice,
                                        opts);
        });

    AsciiTable table({"workload", "phases", "switches", "penalty(K)",
                      "policy", "static", "oracle", "of oracle",
                      "slowdown"});
    double worst_fraction = 1.0;
    for (const adapt::AdaptReport &r : reports) {
        table.row()
            .cell(r.workload)
            .cell(static_cast<std::uint64_t>(r.numPhases))
            .cell(r.switches.total())
            .cell(static_cast<double>(r.switches.penaltyCycles) /
                      1000.0,
                  1)
            .percentCell(r.edpSavings(r.policyTotals))
            .percentCell(r.edpSavings(r.staticBest))
            .percentCell(r.edpSavings(r.oracle))
            .percentCell(r.oracleFraction())
            .percentCell(r.slowdown());
        worst_fraction = std::min(worst_fraction,
                                  r.oracleFraction());
    }
    table.print(std::cout);

    // '-' disables, matching the bench harness convention.
    std::string json = args.get("json", "");
    if (!json.empty() && json != "-") {
        if (!adapt::writeJson(json, reports)) {
            std::cerr << "error: cannot write " << json << "\n";
            return 1;
        }
        std::cout << "wrote " << reports.size() << " reports to "
                  << json << "\n";
    }
    if (args.has("min-oracle")) {
        double limit = args.getDouble("min-oracle", 0.0);
        if (worst_fraction < limit) {
            std::cerr << "error: worst oracle fraction "
                      << worst_fraction * 100.0
                      << "% below --min-oracle " << limit * 100.0
                      << "%\n";
            return 1;
        }
        std::cout << "worst oracle fraction "
                  << worst_fraction * 100.0
                  << "% meets --min-oracle " << limit * 100.0
                  << "%\n";
    }
    return 0;
}

int
cmdFaults(const Args &args)
{
    std::vector<std::string> names = args.positional;
    std::vector<trace::IntervalProfile> traced;
    if (!loadTraceInputs(args, names, traced))
        return 2;
    if (names.empty()) {
        names = workload::workloadNames();
    } else if (traced.empty()) {
        for (const std::string &name : names) {
            if (!workload::isWorkloadName(name)) {
                std::cerr << "error: unknown workload '" << name
                          << "'; run 'tpcp workloads'\n";
                return 2;
            }
        }
    }

    fault::ResilienceOptions ropts;
    ropts.injector.target =
        fault::targetByName(args.get("target", "all"));
    {
        // Which change predictor rides under fault; "lastvalue"
        // (no table at all) is not meaningful here.
        std::string pname = args.get("predictor", "rle2");
        auto spec = pred::predictorSpecByName(pname);
        if (!spec) {
            std::cerr << "error: faults needs a table-backed "
                         "predictor, not '" << pname << "'\n";
            return 2;
        }
        ropts.changePredictor = *spec;
    }
    ropts.injector.ratePerInterval = args.getDouble("rate", 0.01);
    ropts.injector.mitigated = args.has("mitigated");
    ropts.injector.seed = args.getU64("seed", 0x5eedfa17);
    ropts.scrubEvery =
        static_cast<unsigned>(args.getU64("scrub-every", 1));
    ropts.withAdapt = args.has("adapt");
    ropts.adaptLattice = args.get("lattice", "small");
    ropts.checkpointPath = args.get("checkpoint", "");
    ropts.checkpointAt = args.getU64("checkpoint-at", 0);
    ropts.resume = args.has("resume");
    if ((ropts.checkpointAt != 0 || ropts.resume) &&
        (ropts.checkpointPath.empty() || names.size() != 1)) {
        std::cerr << "error: --checkpoint-at/--resume need "
                     "--checkpoint PATH and exactly one workload\n";
        return 2;
    }

    unsigned jobs = static_cast<unsigned>(args.getU64("jobs", 0));
    trace::ProfileOptions opts = profileOptions(args);

    std::cerr << "[faults] " << names.size() << " workloads, target="
              << fault::targetName(ropts.injector.target)
              << ", rate=" << ropts.injector.ratePerInterval
              << (ropts.injector.mitigated ? ", mitigated"
                                           : ", unmitigated")
              << " ("
              << analysis::effectiveJobs(jobs, names.size())
              << " jobs)\n";
    std::vector<fault::ResilienceReport> reports =
        analysis::runIndexed(
            names.size(), jobs, [&](std::size_t i) {
                trace::IntervalProfile profile =
                    traced.empty()
                        ? trace::getProfileByName(names[i], opts)
                        : traced[i];
                return fault::runResilience(profile, ropts);
            });

    AsciiTable table({"workload", "faults", "agreement",
                      "next-phase", "change", "length",
                      "ecc", "repairs", "quar"});
    double worst = 1.0;
    for (const fault::ResilienceReport &r : reports) {
        auto pair = [](double base, double faulty) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.1f>%.1f",
                          base * 100.0, faulty * 100.0);
            return std::string(buf);
        };
        table.row()
            .cell(r.workload)
            .cell(r.faults.total())
            .percentCell(r.agreement())
            .cell(pair(r.nextPhaseAccBase, r.nextPhaseAccFaulty))
            .cell(pair(r.changeAccBase, r.changeAccFaulty))
            .cell(pair(r.lengthAccBase, r.lengthAccFaulty))
            .cell(r.eccCorrections)
            .cell(r.repairs)
            .cell(r.quarantines);
        worst = std::min(worst, r.agreement());
    }
    table.print(std::cout);

    // '-' disables, matching the bench harness convention.
    std::string json = args.get("json", "");
    if (!json.empty() && json != "-") {
        if (!fault::writeJson(json, reports)) {
            std::cerr << "error: cannot write " << json << "\n";
            return 1;
        }
        std::cout << "wrote " << reports.size() << " reports to "
                  << json << "\n";
    }
    if (args.has("min-agreement")) {
        double limit = args.getDouble("min-agreement", 0.0);
        if (worst < limit) {
            std::cerr << "error: worst phase-ID agreement "
                      << worst * 100.0 << "% below --min-agreement "
                      << limit * 100.0 << "%\n";
            return 1;
        }
        std::cout << "worst phase-ID agreement " << worst * 100.0
                  << "% meets --min-agreement " << limit * 100.0
                  << "%\n";
    }
    return 0;
}

int
cmdServe(const Args &args)
{
    const std::vector<std::string> &names = args.positional;
    for (const std::string &name : names) {
        if (!workload::isWorkloadName(name)) {
            std::cerr << "error: unknown workload '" << name
                      << "'; run 'tpcp workloads'\n";
            return 2;
        }
    }
    const unsigned tenants =
        static_cast<unsigned>(args.getU64("tenants", 8));
    const unsigned producers =
        static_cast<unsigned>(args.getU64("producers", 1));
    if (tenants == 0 || producers == 0) {
        std::cerr << "error: --tenants and --producers must be "
                     ">= 1\n";
        return 2;
    }
    const std::uint64_t packets = args.getU64("packets", 2000);
    phase::ClassifierConfig ccfg = classifierConfig(args);
    pred::PhaseTrackerConfig tcfg;
    tcfg.classifier = ccfg;

    // Shared streams: tenant t replays stream t % S, so a tenant's
    // input depends only on its id — never on the producer layout.
    std::vector<serve::EncodedStream> streams;
    if (args.has("trace")) {
        if (!names.empty()) {
            std::cerr << "error: --trace and workload names are "
                         "mutually exclusive\n";
            return 2;
        }
        for (auto &[name, profile] :
             trace::loadTraceProfiles(args.get("trace", "")))
            streams.push_back(serve::encodeProfileStream(
                profile, ccfg.numCounters, packets));
        if (streams.empty()) {
            std::cerr << "error: --trace expects at least one "
                         ".tpcptrace path\n";
            return 2;
        }
    } else if (names.empty()) {
        const unsigned n =
            static_cast<unsigned>(args.getU64("streams", 4));
        const std::uint64_t len = packets == 0 ? 2000 : packets;
        for (unsigned k = 0; k < n; ++k)
            streams.push_back(serve::encodeSyntheticStream(
                k, len, ccfg.numCounters));
    } else {
        trace::ProfileOptions popts = profileOptions(args);
        for (const std::string &name : names)
            streams.push_back(serve::encodeProfileStream(
                trace::getProfileByName(name, popts),
                ccfg.numCounters, packets));
    }
    auto streamOf =
        [&](std::uint64_t t) -> const serve::EncodedStream & {
        return streams[t % streams.size()];
    };

    const std::string phase_out = args.get("phase-out", "");
    if (args.has("batch")) {
        // Reference mode: the offline batch path, one fresh tracker
        // per tenant. CI diffs these files against the service's.
        if (phase_out.empty()) {
            std::cerr << "error: --batch needs --phase-out DIR\n";
            return 2;
        }
        std::filesystem::create_directories(phase_out);
        for (std::uint64_t t = 0; t < tenants; ++t) {
            const std::string path = phase_out + "/tenant_" +
                                     std::to_string(t) + ".phases";
            std::ofstream out(path);
            if (!out) {
                std::cerr << "error: cannot write " << path << "\n";
                return 1;
            }
            for (PhaseId p :
                 serve::batchPhaseStream(streamOf(t), tcfg))
                out << p << '\n';
        }
        std::cout << "wrote " << tenants
                  << " batch phase streams to " << phase_out
                  << "\n";
        return 0;
    }

    serve::ServeOptions sopts;
    sopts.registry.tracker = tcfg;
    sopts.producers = producers;
    sopts.jobs = static_cast<unsigned>(args.getU64("jobs", 0));
    sopts.ringBytes = args.getU64("ring-bytes", 1u << 20);
    sopts.fairness.ratePerCycle = args.getU64("rate-limit", 0);
    sopts.fairness.burst = args.getU64("burst", 0);
    sopts.fairness.drrQuantum = args.getU64("drr-quantum", 16);
    sopts.fairness.maxBacklog = args.getU64("max-backlog", 0);
    sopts.fairness.cycleBudget = args.getU64("cycle-budget", 0);
    sopts.registry.quarantine.offenseThreshold =
        args.getU64("quarantine-threshold", 0);
    sopts.registry.quarantine.offenseWindow =
        args.getU64("quarantine-window", 1024);
    sopts.registry.quarantine.backoffBase =
        args.getU64("quarantine-backoff", 256);
    sopts.registry.quarantine.backoffCap =
        args.getU64("quarantine-backoff-cap", 1u << 20);
    // Tenant t is fed by producer t % producers; a tenant never
    // spans rings, so its packet order is total.
    const unsigned per_part = (tenants + producers - 1) / producers;
    const unsigned resident =
        static_cast<unsigned>(args.getU64("resident", 0));
    sopts.registry.maxResident =
        resident == 0 ? std::max(1u, per_part) : resident;
    sopts.registry.evictAfter = args.getU64("evict-after", 0);
    sopts.registry.checkpointDir =
        args.get("checkpoint-dir", "serve_ckpt");
    sopts.registry.recordPhases = !phase_out.empty();
    std::filesystem::create_directories(
        sopts.registry.checkpointDir);

    serve::ServiceLoop loop(sopts);
    if (args.has("migrate-in")) {
        try {
            const std::size_t adopted =
                loop.migrateIn(args.get("migrate-in", ""));
            std::cout << "migrated " << adopted << " tenants in "
                      << "from " << args.get("migrate-in", "")
                      << "\n";
        } catch (const Error &e) {
            std::cerr << "error: migrate-in rejected bundle: "
                      << e.what() << "\n";
            return 1;
        }
    }
    std::vector<serve::ProducerTask> tasks(producers);
    for (unsigned p = 0; p < producers; ++p) {
        tasks[p].ring = &loop.ring(p);
        tasks[p].policy = args.has("drop")
                              ? serve::BackpressurePolicy::Drop
                              : serve::BackpressurePolicy::Park;
        tasks[p].parkRetryLimit = args.getU64("park-retries", 0);
        tasks[p].startStep = args.getU64("packet-base", 0);
    }
    for (std::uint64_t t = 0; t < tenants; ++t) {
        serve::ProducerTask &task = tasks[t % producers];
        task.tenants.push_back(t);
        task.streams.push_back(&streamOf(t));
    }

    std::vector<serve::ProducerCounters> pcs(producers);
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(producers);
    for (unsigned p = 0; p < producers; ++p)
        threads.emplace_back([&, p] {
            pcs[p] = serve::runProducer(tasks[p]);
            loop.producerDone(p);
        });
    loop.run();
    for (std::thread &th : threads)
        th.join();
    const double elapsed =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();

    // Attribute producer-side backpressure (parks, drops) to the
    // tenants that suffered it, now that the threads joined.
    for (unsigned p = 0; p < producers; ++p)
        for (std::size_t i = 0; i < tasks[p].tenants.size(); ++i)
            loop.noteProducerStats(p, tasks[p].tenants[i],
                                   pcs[p].tenantParks[i],
                                   pcs[p].tenantDropped[i]);

    serve::ServeReport rep;
    rep.tenants = tenants;
    rep.producers = producers;
    rep.jobs = loop.numWorkers();
    for (const serve::ProducerCounters &c : pcs) {
        rep.packetsProduced += c.pushed;
        rep.packetsDropped += c.dropped;
        rep.parkEvents += c.parkEvents;
    }
    rep.service = loop.counters();
    rep.elapsedSec = elapsed;
    rep.packetsPerSec =
        elapsed > 0.0
            ? static_cast<double>(rep.service.packets) / elapsed
            : 0.0;
    if (!phase_out.empty() || tenants <= 64)
        for (std::uint64_t id : loop.allTenantIds())
            rep.perTenant.push_back({id, loop.tenantCounters(id)});

    AsciiTable table({"metric", "value"});
    auto row = [&](const char *k, std::uint64_t v) {
        table.row().cell(k).cell(v);
    };
    row("tenants", rep.service.tenants);
    row("producers", producers);
    row("workers", rep.jobs);
    row("packets produced", rep.packetsProduced);
    row("packets delivered", rep.service.packets);
    row("packets dropped", rep.packetsDropped);
    row("park events", rep.parkEvents);
    row("malformed", rep.service.malformedPackets);
    row("rejected", rep.service.rejectedPackets);
    row("shed", rep.service.shedPackets);
    row("evictions", rep.service.evictions);
    row("resumes", rep.service.resumes);
    row("phase switches", rep.service.phaseSwitches);
    row("lost upstream", rep.service.lostUpstream);
    row("quarantines", rep.service.quarantines);
    row("quarantine drops", rep.service.quarantineDrops);
    row("readmissions", rep.service.readmissions);
    row("resume failures", rep.service.resumeFailures);
    row("drain cycles", rep.service.drainCycles);
    table.row().cell("packets/s").cell(rep.packetsPerSec, 0);
    table.print(std::cout);

    // Every packet a producer pushed must be accounted for at the
    // consumer: delivered, malformed, visibly rejected, shed by the
    // flow scheduler, or dropped in quarantine. Anything else is
    // silent loss, which is a bug, not a statistic.
    const std::uint64_t accounted = rep.service.packets +
                                    rep.service.malformedPackets +
                                    rep.service.rejectedPackets +
                                    rep.service.shedPackets +
                                    rep.service.quarantineDrops;
    if (accounted != rep.packetsProduced) {
        std::cerr << "error: silent packet loss: "
                  << rep.packetsProduced << " pushed but only "
                  << accounted << " accounted for\n";
        return 1;
    }

    if (args.has("migrate-out")) {
        try {
            loop.migrateOut(args.get("migrate-out", ""));
            std::cout << "migrated " << rep.service.tenants
                      << " tenants out to "
                      << args.get("migrate-out", "") << "\n";
        } catch (const Error &e) {
            std::cerr << "error: migrate-out failed: " << e.what()
                      << "\n";
            return 1;
        }
    }

    if (!phase_out.empty()) {
        loop.writePhaseStreams(phase_out);
        std::cout << "wrote " << loop.allTenantIds().size()
                  << " phase streams to " << phase_out << "\n";
    }
    std::string json = args.get("json", "");
    if (!json.empty() && json != "-") {
        if (!serve::writeJson(json, rep)) {
            std::cerr << "error: cannot write " << json << "\n";
            return 1;
        }
        std::cout << "wrote report to " << json << "\n";
    }
    if (args.has("min-rate")) {
        const double limit = args.getDouble("min-rate", 0.0);
        if (rep.packetsPerSec < limit) {
            std::cerr << "error: ingest rate " << rep.packetsPerSec
                      << " packets/s below --min-rate " << limit
                      << "\n";
            return 1;
        }
        std::cout << "ingest rate " << rep.packetsPerSec
                  << " packets/s meets --min-rate " << limit
                  << "\n";
    }
    return 0;
}

/** Writes raw bytes to @p path (corpus files are plain writes; the
 * atomic writer is for files readers may race on). */
bool
writeBytes(const std::string &path,
           const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    return static_cast<bool>(out.flush());
}

int
cmdTraceExport(const Args &args)
{
    std::string out = args.get("out", "");
    if (out.empty()) {
        std::cerr << "error: trace export needs --out=PATH\n";
        return 2;
    }
    if (args.has("trace")) {
        // Re-export an ingested trace: a parse -> encode round trip
        // is byte-identical (the CI ingest job cmp's the two files).
        trace::TraceData data =
            trace::readTrace(args.get("trace", ""));
        trace::writeTrace(out, data.profile, data.source);
        std::cout << "re-exported " << data.profile.numIntervals()
                  << " intervals to " << out << "\n";
        return 0;
    }
    // Positional workload: drop the leading "export" verb.
    Args rest = args;
    rest.positional.erase(rest.positional.begin());
    auto name = requireWorkload(rest);
    if (!name)
        return 2;
    trace::IntervalProfile profile =
        trace::getProfileByName(*name, profileOptions(args));
    std::string source =
        args.get("source", "tpcp trace export " + *name);
    trace::writeTrace(out, profile, source);
    std::cout << "exported " << profile.numIntervals()
              << " intervals of " << *name << " to " << out << "\n";
    return 0;
}

int
cmdTraceInfo(const Args &args)
{
    if (args.positional.size() < 2) {
        std::cerr << "error: trace info needs a file path\n";
        return 2;
    }
    const std::string &path = args.positional[1];
    trace::TraceData data = trace::readTrace(path);
    std::string dims;
    for (unsigned d : data.profile.dims())
        dims += (dims.empty() ? "" : ",") + std::to_string(d);
    char hash[32];
    std::snprintf(hash, sizeof(hash), "%016llx",
                  static_cast<unsigned long long>(
                      data.contentHash));
    AsciiTable table({"field", "value"});
    table.row().cell("workload").cell(data.profile.workload());
    table.row().cell("core").cell(data.profile.coreName());
    table.row().cell("interval length")
        .cell(static_cast<std::uint64_t>(
            data.profile.intervalLength()));
    table.row().cell("intervals").cell(
        static_cast<std::uint64_t>(data.profile.numIntervals()));
    table.row().cell("dims").cell(dims);
    table.row().cell("machine hash").cell(
        data.profile.machineHash());
    table.row().cell("source").cell(
        data.source.empty() ? "-" : data.source);
    table.row().cell("content hash").cell(std::string(hash));
    table.print(std::cout);
    return 0;
}

int
cmdTraceGen(const Args &args)
{
    workload::AdversarialSpec spec;
    spec.family = args.get("family", "phase-alias");
    if (spec.family == "help") {
        for (const std::string &f :
             workload::adversarialFamilies())
            std::cout << f << "\n";
        return 0;
    }
    spec.seed = args.getU64("seed", 1);
    spec.intervals =
        static_cast<std::size_t>(args.getU64("intervals", 600));
    spec.intervalLen = args.getU64("interval", 100'000);
    std::string out = args.get("out", "");
    if (out.empty()) {
        std::cerr << "error: trace gen needs --out=PATH\n";
        return 2;
    }
    workload::AdversarialTrace adv =
        workload::makeAdversarial(spec);
    std::string source = "adversarial family=" + spec.family +
                         " seed=" + std::to_string(spec.seed);
    trace::writeTrace(out, adv.profile, source);
    std::cout << "generated " << adv.profile.numIntervals()
              << " intervals (" << adv.numBehaviors
              << " behaviors) of " << spec.family << " to " << out
              << "\n";
    return 0;
}

/**
 * Writes the deterministic corruption corpus: a small valid seed
 * trace plus one file per corruption class, with a MANIFEST mapping
 * each file to the loader outcome it must produce. The CI
 * trace-hardening job and tests/trace replay it; both also regenerate
 * it and diff, so the checked-in corpus can never drift from the
 * writer.
 */
int
cmdTraceCorpus(const Args &args)
{
    if (args.positional.size() < 2) {
        std::cerr << "error: trace corpus needs an output dir\n";
        return 2;
    }
    const std::string dir = args.positional[1];
    std::filesystem::create_directories(dir);

    workload::AdversarialSpec spec;
    spec.family = "phase-alias";
    spec.seed = 7;
    spec.intervals = 40;
    const std::vector<std::uint8_t> good = trace::encodeTrace(
        workload::makeAdversarial(spec).profile,
        "corruption-corpus seed");

    // Offsets of the pieces we corrupt (format: trace_file.hh).
    std::uint32_t header_len;
    std::memcpy(&header_len, good.data() + 8, 4);
    const std::size_t header_start = 12;
    const std::size_t crc_at = header_start + header_len;
    const std::size_t records_at = crc_at + 4;

    std::vector<
        std::pair<std::string, std::vector<std::uint8_t>>>
        files;
    files.emplace_back("seed.tpcptrace", good);
    files.emplace_back("empty.tpcptrace",
                       std::vector<std::uint8_t>{});

    auto variant = [&](const std::string &name, auto &&mutate) {
        std::vector<std::uint8_t> bytes = good;
        mutate(bytes);
        files.emplace_back(name, std::move(bytes));
    };
    variant("bad-magic.tpcptrace",
            [](auto &b) { b[0] ^= 0xff; });
    variant("bad-version.tpcptrace",
            [](auto &b) { b[4] = 0x7f; });
    variant("truncated-header.tpcptrace", [&](auto &b) {
        b.resize(header_start + header_len / 2);
    });
    variant("truncated-record.tpcptrace",
            [](auto &b) { b.resize(b.size() - 7); });
    variant("trailing-garbage.tpcptrace", [](auto &b) {
        b.insert(b.end(), {0xde, 0xad, 0xbe, 0xef, 0x00});
    });
    variant("flipped-header.tpcptrace", [&](auto &b) {
        b[header_start + 2] ^= 0x10; // CRC must catch it
    });
    variant("forged-count.tpcptrace", [&](auto &b) {
        // Claim 1000 extra records *with a valid header CRC*: only
        // the count-vs-remaining-bytes bound can reject this one.
        std::uint64_t count;
        std::memcpy(&count, b.data() + crc_at - 8, 8);
        count += 1000;
        std::memcpy(b.data() + crc_at - 8, &count, 8);
        std::uint32_t crc =
            crc32(b.data() + header_start, header_len);
        std::memcpy(b.data() + crc_at, &crc, 4);
    });
    variant("bad-record-len.tpcptrace", [&](auto &b) {
        std::uint32_t len;
        std::memcpy(&len, b.data() + records_at, 4);
        len += 4;
        std::memcpy(b.data() + records_at, &len, 4);
    });
    variant("flipped-payload.tpcptrace", [&](auto &b) {
        b[records_at + 4 + 10] ^= 0x01; // record CRC must catch it
    });
    variant("flipped-crc.tpcptrace", [&](auto &b) {
        b[b.size() - 1] ^= 0x80; // last record's CRC field
    });

    std::string manifest =
        "# file -> required loader outcome (ok | fail)\n";
    for (const auto &[name, bytes] : files) {
        if (!writeBytes(dir + "/" + name, bytes)) {
            std::cerr << "error: cannot write " << dir << "/"
                      << name << "\n";
            return 1;
        }
        manifest += name;
        manifest += name == "seed.tpcptrace" ? " ok\n" : " fail\n";
    }
    std::ofstream mf(dir + "/MANIFEST");
    mf << manifest;
    if (!mf.flush()) {
        std::cerr << "error: cannot write " << dir
                  << "/MANIFEST\n";
        return 1;
    }
    std::cout << "wrote " << files.size()
              << " corpus files + MANIFEST to " << dir << "\n";
    return 0;
}

int
cmdTrace(const Args &args)
{
    if (args.positional.empty()) {
        std::cerr << "usage: tpcp trace <export|info|gen|corpus> "
                     "[options]\n";
        return 2;
    }
    const std::string &verb = args.positional.front();
    if (verb == "export")
        return cmdTraceExport(args);
    if (verb == "info")
        return cmdTraceInfo(args);
    if (verb == "gen")
        return cmdTraceGen(args);
    if (verb == "corpus")
        return cmdTraceCorpus(args);
    std::cerr << "error: unknown trace verb '" << verb
              << "' (export | info | gen | corpus)\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::string cmd = argv[1];
    Args args(argc, argv, 2);

    // The library raises recoverable tpcp::Error instead of exiting;
    // the tool is the process boundary that turns an unhandled one
    // into exit code 1.
    try {
        if (cmd == "workloads")
            return cmdWorkloads();
        if (cmd == "machine")
            return cmdMachine();
        if (cmd == "profile")
            return cmdProfile(args);
        if (cmd == "classify")
            return cmdClassify(args);
        if (cmd == "predict")
            return cmdPredict(args);
        if (cmd == "export")
            return cmdExport(args);
        if (cmd == "simstats")
            return cmdSimStats(args);
        if (cmd == "sample")
            return cmdSample(args);
        if (cmd == "adapt")
            return cmdAdapt(args);
        if (cmd == "faults")
            return cmdFaults(args);
        if (cmd == "serve")
            return cmdServe(args);
        if (cmd == "trace")
            return cmdTrace(args);
    } catch (const Error &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    return usage();
}
