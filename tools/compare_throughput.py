#!/usr/bin/env python3
"""Compare a micro_throughput run against the checked-in baseline.

Usage:
    compare_throughput.py BASELINE.json CURRENT.json [--tolerance F]
                          [--strict]

Each benchmark is matched by (name, config) and its items_per_sec is
compared against the baseline. A benchmark regresses when

    current < baseline * (1 - tolerance)

The default tolerance is deliberately generous (50%): the CI runner
is a shared 1-core container, so this check is a tripwire for large
regressions (an accidental O(n^2), a lost optimization), not a gate
on run-to-run noise. By default regressions are reported as warnings
and the exit code stays 0; pass --strict to exit 1 instead.

A benchmark whose unit differs between baseline and current measures
different work (e.g. classify_loop switching from online intervals to
batched replayed-intervals): the ratio would be apples-to-oranges, so
a unit mismatch is always a hard error (exit 1 even without
--strict) telling you to refresh the baseline.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    return {(r["name"], r["config"]): r for r in doc["results"]}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.5,
                    help="allowed fractional slowdown (default 0.5)")
    ap.add_argument("--strict", action="store_true",
                    help="exit non-zero on regressions")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    regressions = []
    unit_mismatches = []
    print(f"{'benchmark':<14} {'config':<14} {'baseline':>14} "
          f"{'current':>14} {'ratio':>7}")
    for key in sorted(base):
        name, config = key
        b = base[key]["items_per_sec"]
        c_entry = cur.get(key)
        if c_entry is None:
            regressions.append((name, config, "missing from current"))
            print(f"{name:<14} {config:<14} {b:>14,} {'MISSING':>14}")
            continue
        b_unit = base[key].get("unit")
        c_unit = c_entry.get("unit")
        if b_unit != c_unit:
            unit_mismatches.append(
                (name, config,
                 f"baseline counts '{b_unit}', current counts "
                 f"'{c_unit}'"))
            print(f"{name:<14} {config:<14} {b:>14,} "
                  f"{'UNIT MISMATCH':>14}")
            continue
        c = c_entry["items_per_sec"]
        ratio = c / b if b else float("inf")
        flag = ""
        if c < b * (1.0 - args.tolerance):
            regressions.append(
                (name, config,
                 f"{c:,}/sec vs baseline {b:,}/sec "
                 f"(ratio {ratio:.2f})"))
            flag = "  <-- REGRESSION"
        print(f"{name:<14} {config:<14} {b:>14,} {c:>14,} "
              f"{ratio:>6.2f}x{flag}")
    for key in sorted(set(cur) - set(base)):
        print(f"{key[0]:<14} {key[1]:<14} {'(new, no baseline)':>29}")

    if unit_mismatches:
        print(f"\nerror: {len(unit_mismatches)} benchmark(s) change "
              f"unit between baseline and current — the throughput "
              f"ratio would compare different work. Refresh the "
              f"baseline for:", file=sys.stderr)
        for name, config, detail in unit_mismatches:
            print(f"  {name} [{config}]: {detail}", file=sys.stderr)
        return 1

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) slower than "
              f"{(1 - args.tolerance):.0%} of baseline:",
              file=sys.stderr)
        for name, config, detail in regressions:
            print(f"  {name} [{config}]: {detail}", file=sys.stderr)
        if args.strict:
            return 1
        print("(warn-only: perf tripwire, not a gate)",
              file=sys.stderr)
    else:
        print("\nall benchmarks within tolerance of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
