/**
 * @file
 * Figure 3: CPI CoV and number of phases detected for different
 * numbers of signature counters (8, 16, 32, 64 dimensions), with the
 * whole-program CoV for reference. 32-entry LRU table, 12.5%
 * similarity threshold.
 *
 * Expected shape (paper): 8 counters are clearly insufficient (CoV
 * close to whole-program); 16+ counters give good classifications;
 * whole-program CoV is high (the motivation for phase analysis).
 */

#include <iostream>

#include "analysis/experiment.hh"
#include "bench_common.hh"
#include "common/ascii_table.hh"

using namespace tpcp;

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseArgs(
        argc, argv, {bench::traceFlag()});
    bench::banner("Figure 3",
                  "CPI CoV and phase count vs signature counters");
    auto profiles = bench::loadAllProfiles(args);

    const unsigned dim_configs[] = {8, 16, 32, 64};

    std::vector<phase::ClassifierConfig> configs;
    for (unsigned dims : dim_configs) {
        phase::ClassifierConfig cfg;
        cfg.numCounters = dims;
        cfg.similarityThreshold = 0.125;
        cfg.minCountThreshold = 0;
        cfg.tableEntries = 32;
        configs.push_back(cfg);
    }
    auto results = analysis::runGrid(profiles, configs, args.jobs);

    AsciiTable cov({"workload", "8 dim", "16 dim", "32 dim", "64 dim",
                    "Whole Program"});
    AsciiTable phases({"workload", "8 dim", "16 dim", "32 dim",
                       "64 dim"});
    std::vector<std::vector<double>> cov_cols(5);
    std::vector<std::vector<double>> phase_cols(4);

    for (std::size_t w = 0; w < profiles.size(); ++w) {
        cov.row().cell(profiles[w].first);
        phases.row().cell(profiles[w].first);
        double whole = 0.0;
        for (std::size_t c = 0; c < 4; ++c) {
            const analysis::ClassificationResult &res =
                results[w * configs.size() + c];
            cov.percentCell(res.covCpi);
            phases.cell(static_cast<std::uint64_t>(res.numPhases));
            cov_cols[c].push_back(res.covCpi);
            phase_cols[c].push_back(
                static_cast<double>(res.numPhases));
            whole = res.wholeProgramCov;
        }
        cov.percentCell(whole);
        cov_cols[4].push_back(whole);
    }
    cov.row().cell("avg");
    phases.row().cell("avg");
    for (std::size_t c = 0; c < 5; ++c)
        cov.percentCell(bench::mean(cov_cols[c]));
    for (std::size_t c = 0; c < 4; ++c)
        phases.cell(bench::mean(phase_cols[c]), 1);

    std::cout << "CPI CoV by signature dimensionality:\n";
    cov.print(std::cout);
    std::cout << "\nNumber of phase IDs generated:\n";
    phases.print(std::cout);
    std::cout << "\nPaper shape check: 8 dims insufficient (CoV much "
                 "higher than 16+);\nclassification cuts whole-program "
                 "CoV by roughly an order of magnitude.\n";
    return 0;
}
