/**
 * @file
 * Figure 2: per-phase CPI CoV and number of phases detected for
 * different numbers of Signature Table entries (16, 32, 64 and
 * unbounded), using the [25]-style configuration: 32 accumulator
 * counters, 12.5% similarity threshold, no transition phase.
 *
 * Expected shape (paper): the number of phases detected decreases
 * dramatically as table entries increase (evictions lose signatures,
 * so behaviors get re-discovered under fresh phase IDs); CPI CoV
 * increases slightly with more entries.
 */

#include <iostream>

#include "analysis/experiment.hh"
#include "bench_common.hh"
#include "common/ascii_table.hh"

using namespace tpcp;

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseArgs(
        argc, argv, {bench::traceFlag()});
    bench::banner("Figure 2",
                  "CPI CoV and phase count vs signature-table size");
    auto profiles = bench::loadAllProfiles(args);

    const unsigned entry_configs[] = {16, 32, 64, 0}; // 0 = unbounded
    auto label = [](unsigned e) {
        return e == 0 ? std::string("inf")
                      : std::to_string(e) + " entry";
    };

    std::vector<phase::ClassifierConfig> configs;
    for (unsigned entries : entry_configs) {
        phase::ClassifierConfig cfg;
        cfg.numCounters = 32;
        cfg.similarityThreshold = 0.125;
        cfg.minCountThreshold = 0;
        cfg.tableEntries = entries;
        configs.push_back(cfg);
    }
    auto results = analysis::runGrid(profiles, configs, args.jobs);

    AsciiTable cov({"workload", "16 entry CoV", "32 entry CoV",
                    "64 entry CoV", "inf CoV"});
    AsciiTable phases({"workload", "16 entry", "32 entry", "64 entry",
                       "inf"});
    std::vector<std::vector<double>> cov_cols(4);
    std::vector<std::vector<double>> phase_cols(4);

    for (std::size_t w = 0; w < profiles.size(); ++w) {
        cov.row().cell(profiles[w].first);
        phases.row().cell(profiles[w].first);
        for (std::size_t c = 0; c < 4; ++c) {
            const analysis::ClassificationResult &res =
                results[w * configs.size() + c];
            cov.percentCell(res.covCpi);
            phases.cell(static_cast<std::uint64_t>(res.numPhases));
            cov_cols[c].push_back(res.covCpi);
            phase_cols[c].push_back(
                static_cast<double>(res.numPhases));
        }
    }
    cov.row().cell("avg");
    phases.row().cell("avg");
    for (std::size_t c = 0; c < 4; ++c) {
        cov.percentCell(bench::mean(cov_cols[c]));
        phases.cell(bench::mean(phase_cols[c]), 1);
    }

    std::cout << "CPI CoV (std dev / mean, weighted per phase):\n";
    cov.print(std::cout);
    std::cout << "\nNumber of phase IDs generated ("
              << label(0) << " = unbounded table):\n";
    phases.print(std::cout);
    std::cout << "\nPaper shape check: phases(16) > phases(32) > "
                 "phases(64) > phases(inf);\nCoV grows slightly with "
                 "table size.\n";
    return 0;
}
