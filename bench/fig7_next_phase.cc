/**
 * @file
 * Figure 7: next-phase prediction. For each predictor, the breakdown
 * of next-interval predictions into: correct/incorrect change-table
 * predictions and correct/incorrect last-value fallbacks split by
 * last-value confidence. Averaged over all workloads; classifier is
 * the paper's preferred configuration (16 counters, 32 entries, 25%
 * similarity, min count 8, 25% CPI deviation).
 *
 * Expected shape (paper): last-value prediction is ~75% accurate (25%
 * of interval transitions change phase); Markov and RLE tables add
 * only a few percent; confidence trades coverage for accuracy (the
 * paper reports 80% accuracy at 70% coverage).
 */

#include <iostream>
#include <optional>

#include "analysis/experiment.hh"
#include "bench_common.hh"
#include "common/ascii_table.hh"
#include "pred/eval.hh"

using namespace tpcp;
using pred::ChangePredictorConfig;
using pred::PayloadView;
using pred::PredictorSpec;

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseArgs(
        argc, argv, {bench::traceFlag()});
    bench::banner("Figure 7", "Next Phase Prediction");
    auto profiles = bench::loadAllProfiles(args);

    phase::ClassifierConfig ccfg =
        phase::ClassifierConfig::paperDefault();

    // Classify every workload once; predictors replay the traces.
    auto classified =
        analysis::runGrid(profiles, {ccfg}, args.jobs);
    std::vector<std::vector<PhaseId>> traces;
    for (analysis::ClassificationResult &res : classified)
        traces.push_back(std::move(res.trace.phases));

    struct Bar
    {
        std::string label;
        std::optional<PredictorSpec> spec;
    };
    auto tbl = [](const ChangePredictorConfig &cfg) {
        return PredictorSpec::tableSpec(cfg);
    };
    std::vector<Bar> bars;
    bars.push_back({"Last Value", std::nullopt});
    bars.push_back({"Markov-1",
                    tbl(ChangePredictorConfig::markov(1))});
    bars.push_back({"Markov-2",
                    tbl(ChangePredictorConfig::markov(2))});
    bars.push_back({"Last4 Markov-1",
                    tbl(ChangePredictorConfig::markov(
                        1, PayloadView::Last4))});
    bars.push_back({"Last4 Markov-2",
                    tbl(ChangePredictorConfig::markov(
                        2, PayloadView::Last4))});
    {
        ChangePredictorConfig no_conf =
            ChangePredictorConfig::markov(2);
        no_conf.useConfidence = false;
        no_conf.name = "Markov-2 NoTableConf";
        bars.push_back({"Markov-2 NoTableConf", tbl(no_conf)});
    }
    bars.push_back({"RLE-1", tbl(ChangePredictorConfig::rle(1))});
    bars.push_back({"RLE-2", tbl(ChangePredictorConfig::rle(2))});
    bars.push_back({"Last4 RLE-1",
                    tbl(ChangePredictorConfig::rle(
                        1, PayloadView::Last4))});
    bars.push_back({"Last4 RLE-2",
                    tbl(ChangePredictorConfig::rle(
                        2, PayloadView::Last4))});
    {
        ChangePredictorConfig no_conf = ChangePredictorConfig::rle(2);
        no_conf.useConfidence = false;
        no_conf.name = "RLE-2 NoConf";
        bars.push_back({"RLE-2 NoConf", tbl(no_conf)});
    }
    bars.push_back({"TAGE", PredictorSpec::tageSpec()});
    bars.push_back({"Perceptron", PredictorSpec::perceptronSpec()});

    AsciiTable table({"predictor", "corr table", "corr lv conf",
                      "corr lv unconf", "inc lv unconf",
                      "inc lv conf", "inc table", "accuracy",
                      "conf acc", "conf cover"});
    auto aggs = analysis::runIndexed(
        bars.size(), args.jobs, [&](std::size_t b) {
            pred::NextPhaseStats agg;
            for (const auto &trace : traces)
                agg.merge(bars[b].spec
                              ? pred::evalNextPhase(trace,
                                                    *bars[b].spec)
                              : pred::evalNextPhase(trace,
                                                    std::nullopt));
            return agg;
        });
    for (std::size_t b = 0; b < bars.size(); ++b) {
        const Bar &bar = bars[b];
        const pred::NextPhaseStats &agg = aggs[b];
        double t = static_cast<double>(agg.total);
        auto pct = [&](std::uint64_t v) {
            return t ? static_cast<double>(v) / t : 0.0;
        };
        table.row()
            .cell(bar.label)
            .percentCell(pct(agg.correctTable))
            .percentCell(pct(agg.correctLvConf))
            .percentCell(pct(agg.correctLvUnconf))
            .percentCell(pct(agg.incorrectLvUnconf))
            .percentCell(pct(agg.incorrectLvConf))
            .percentCell(pct(agg.incorrectTable))
            .percentCell(agg.accuracy())
            .percentCell(agg.confidentAccuracy())
            .percentCell(agg.confidentCoverage());
    }
    table.print(std::cout);

    // Context row: how often adjacent intervals change phase.
    pred::NextPhaseStats lv;
    for (const auto &trace : traces)
        lv.merge(pred::evalNextPhase(trace, std::nullopt));
    // Guarded: a constant-phase (or empty) trace set has no
    // transitions to take a percentage of.
    const double change_pct =
        lv.total ? 100.0 * static_cast<double>(lv.phaseChanges) /
                       static_cast<double>(lv.total)
                 : 0.0;
    std::cout << "\nFraction of interval transitions that change "
                 "phase: "
              << change_pct << "%\n";
    std::cout << "Paper shape check: last value ~75% accurate; "
                 "Markov/RLE add a few\npercent; confidence raises "
                 "accuracy on covered intervals at the cost of\n"
                 "coverage (paper: ~80% accuracy at ~70% coverage).\n";
    return 0;
}
