/**
 * @file
 * Figure 4: the effect of the transition phase. CPI CoV, number of
 * phases, time spent in transitions, and last-value misprediction
 * rate for similarity thresholds of 12.5% and 25% crossed with
 * transition min-count thresholds of 0, 4 and 8 (16 counters,
 * 32-entry table).
 *
 * Expected shape (paper): the transition phase cuts the number of
 * phase IDs from hundreds to tens without significantly hurting CoV;
 * min count 8 at 12.5% pushes transition time to ~30% for gcc-like
 * programs; the 25%+min-8 configuration balances CoV, phase count,
 * transition time and predictability, and reduces last-value
 * mispredictions vs the baseline.
 */

#include <iostream>

#include "analysis/experiment.hh"
#include "bench_common.hh"
#include "common/ascii_table.hh"
#include "pred/eval.hh"

using namespace tpcp;

namespace
{

struct Config
{
    const char *label;
    double threshold;
    unsigned minCount;
};

constexpr Config configs[] = {
    {"12.5%+0min", 0.125, 0}, {"12.5%+4min", 0.125, 4},
    {"12.5%+8min", 0.125, 8}, {"25%+4min", 0.25, 4},
    {"25%+8min", 0.25, 8},
};
constexpr std::size_t numConfigs =
    sizeof(configs) / sizeof(configs[0]);

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseArgs(
        argc, argv, {bench::traceFlag()});
    bench::banner("Figure 4",
                  "Transition-phase classification (similarity x "
                  "min-count)");
    auto profiles = bench::loadAllProfiles(args);

    std::vector<std::string> headers = {"workload"};
    for (const Config &c : configs)
        headers.push_back(c.label);

    std::vector<phase::ClassifierConfig> grid_cfgs;
    for (const Config &c : configs) {
        phase::ClassifierConfig cfg;
        cfg.numCounters = 16;
        cfg.tableEntries = 32;
        cfg.similarityThreshold = c.threshold;
        cfg.minCountThreshold = c.minCount;
        grid_cfgs.push_back(cfg);
    }
    auto results = analysis::runGrid(profiles, grid_cfgs, args.jobs);

    AsciiTable cov(headers);
    AsciiTable phases(headers);
    AsciiTable trans(headers);
    AsciiTable mispred(headers);
    std::vector<std::vector<double>> cov_cols(numConfigs),
        phase_cols(numConfigs), trans_cols(numConfigs),
        mis_cols(numConfigs);

    for (std::size_t w = 0; w < profiles.size(); ++w) {
        const std::string &name = profiles[w].first;
        cov.row().cell(name);
        phases.row().cell(name);
        trans.row().cell(name);
        mispred.row().cell(name);
        for (std::size_t c = 0; c < numConfigs; ++c) {
            const analysis::ClassificationResult &res =
                results[w * numConfigs + c];

            // Last-value misprediction rate over the classified
            // phase-ID stream (no confidence, no change table).
            pred::NextPhaseStats lv = pred::evalNextPhase(
                res.trace.phases, std::nullopt);
            double miss = 1.0 - lv.accuracy();

            cov.percentCell(res.covCpi);
            phases.cell(static_cast<std::uint64_t>(res.numPhases));
            trans.percentCell(res.transitionFraction);
            mispred.percentCell(miss);
            cov_cols[c].push_back(res.covCpi);
            phase_cols[c].push_back(
                static_cast<double>(res.numPhases));
            trans_cols[c].push_back(res.transitionFraction);
            mis_cols[c].push_back(miss);
        }
    }
    cov.row().cell("avg");
    phases.row().cell("avg");
    trans.row().cell("avg");
    mispred.row().cell("avg");
    for (std::size_t c = 0; c < numConfigs; ++c) {
        cov.percentCell(bench::mean(cov_cols[c]));
        phases.cell(bench::mean(phase_cols[c]), 1);
        trans.percentCell(bench::mean(trans_cols[c]));
        mispred.percentCell(bench::mean(mis_cols[c]));
    }

    std::cout << "CPI CoV (transition phase excluded):\n";
    cov.print(std::cout);
    std::cout << "\nNumber of stable phase IDs:\n";
    phases.print(std::cout);
    std::cout << "\nTime classified into the transition phase:\n";
    trans.print(std::cout);
    std::cout << "\nLast-value phase-ID misprediction rate:\n";
    mispred.print(std::cout);
    std::cout << "\nPaper shape check: min-count thresholds cut phase "
                 "counts by ~10x; the\n25%+8min configuration gives "
                 "low transition time and the lowest last-value\n"
                 "misprediction rate.\n";
    return 0;
}
