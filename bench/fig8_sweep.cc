/**
 * @file
 * Figure-8 extension sweep: the geometric-history (TAGE) and
 * perceptron predictors against the paper's best table configs,
 * per workload, plus confidence-gating coverage-vs-accuracy curves.
 *
 * Three products:
 *  - a per-workload table of phase-change prediction rates for the
 *    paper's best Markov/RLE configs, the two new predictors and the
 *    perfect-Markov-1 upper bound, with the fraction of the
 *    remaining gap to perfect that the best new predictor closes;
 *  - coverage-vs-accuracy curves swept over the TAGE confidence
 *    threshold and the perceptron margin (the confidence gate trades
 *    coverage for confident accuracy, Figure-8 style);
 *  - a JSON dump of all of the above (--json, default
 *    fig8_sweep.json).
 *
 * --check-improve is the CI tripwire: exit 1 unless the best new
 * predictor's aggregate correct rate beats the RLE-2 baseline.
 *
 * Deterministic at any --jobs: every cell is a pure function of one
 * (workload, predictor) pair and results merge in grid order.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/experiment.hh"
#include "bench_common.hh"
#include "common/ascii_table.hh"
#include "pred/eval.hh"

using namespace tpcp;
using pred::ChangeOutcomeStats;
using pred::PredictorSpec;

namespace
{

/** The compared predictors, in column order: the paper's strongest
 * table configs first, then the new geometric/perceptron ones. */
const std::vector<std::string> kSpecNames = {
    "markov1", "rle2", "top4markov1", "last4markov1",
    "tage",    "perceptron",
};

/** Fixed-precision double for bit-identical JSON at any --jobs. */
std::string
jnum(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    return buf;
}

void
jsonStats(std::ostream &os, const ChangeOutcomeStats &s)
{
    os << "{\"changes\": " << s.changes
       << ", \"correct_rate\": " << jnum(s.correctRate())
       << ", \"conf_correct_rate\": "
       << jnum(s.confidentCorrectRate())
       << ", \"conf_correct\": " << s.confCorrect
       << ", \"unconf_correct\": " << s.unconfCorrect
       << ", \"tag_miss\": " << s.tagMiss
       << ", \"unconf_incorrect\": " << s.unconfIncorrect
       << ", \"conf_incorrect\": " << s.confIncorrect << "}";
}

/** Coverage of the confidence gate: confident fraction of changes.
 * Guarded for constant-phase traces with no changes at all. */
double
coverage(const ChangeOutcomeStats &s)
{
    return s.changes
               ? static_cast<double>(s.confCorrect +
                                     s.confIncorrect) /
                     static_cast<double>(s.changes)
               : 0.0;
}

/** Accuracy among confident predictions only (guarded: a fully
 * ungated or changeless trace has no confident predictions). */
double
confAccuracy(const ChangeOutcomeStats &s)
{
    std::uint64_t conf = s.confCorrect + s.confIncorrect;
    return conf ? static_cast<double>(s.confCorrect) /
                      static_cast<double>(conf)
                : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseArgs(
        argc, argv,
        {{"json", true,
          "write the sweep as JSON (default fig8_sweep.json; "
          "'-' disables)"},
         {"check-improve", false,
          "exit 1 unless the best new predictor's aggregate "
          "correct rate beats the RLE-2 baseline (CI tripwire)"},
         bench::traceFlag()});
    std::string json_path = args.get("json", "fig8_sweep.json");

    bench::banner("Figure 8 sweep",
                  "TAGE / perceptron vs the paper's tables");
    auto profiles = bench::loadAllProfiles(args);

    phase::ClassifierConfig ccfg =
        phase::ClassifierConfig::paperDefault();
    auto classified =
        analysis::runGrid(profiles, {ccfg}, args.jobs);
    std::vector<std::string> names;
    std::vector<std::vector<PhaseId>> traces;
    for (analysis::ClassificationResult &res : classified) {
        names.push_back(res.workload);
        traces.push_back(std::move(res.trace.phases));
    }
    const std::size_t W = names.size(), P = kSpecNames.size();

    // One cell per (workload, predictor).
    auto cells = analysis::runIndexed(
        W * P, args.jobs, [&](std::size_t i) {
            const auto spec =
                pred::predictorSpecByName(kSpecNames[i % P]);
            return pred::evalChangeOutcome(traces[i / P], *spec);
        });
    auto perfect = analysis::runIndexed(
        W, args.jobs, [&](std::size_t w) {
            return pred::evalPerfectMarkov(traces[w], 1);
        });

    // Confidence sweeps: TAGE entry-confidence threshold and
    // perceptron margin, aggregated over all workloads per setting.
    const std::vector<unsigned> tageThresholds = {0, 1, 2, 3};
    const std::vector<unsigned> percMargins = {0, 2, 4, 8,
                                               16, 24, 32};
    auto tageSweep = analysis::runIndexed(
        tageThresholds.size(), args.jobs, [&](std::size_t i) {
            pred::TagePredictorConfig tcfg;
            tcfg.confThreshold = tageThresholds[i];
            ChangeOutcomeStats agg;
            for (const auto &trace : traces)
                agg.merge(pred::evalChangeOutcome(
                    trace, PredictorSpec::tageSpec(tcfg)));
            return agg;
        });
    auto percSweep = analysis::runIndexed(
        percMargins.size(), args.jobs, [&](std::size_t i) {
            pred::PerceptronPredictorConfig pcfg;
            pcfg.confMargin = percMargins[i];
            ChangeOutcomeStats agg;
            for (const auto &trace : traces)
                agg.merge(pred::evalChangeOutcome(
                    trace, PredictorSpec::perceptronSpec(pcfg)));
            return agg;
        });

    // Per-workload table. "best table" is the strongest paper
    // config on that workload; "gap closed" the fraction of its
    // remaining distance to perfect Markov-1 the best new
    // predictor recovers.
    std::vector<std::string> headers = {"workload", "changes"};
    for (const std::string &n : kSpecNames)
        headers.push_back(n);
    headers.push_back("perfect M1");
    headers.push_back("gap closed");
    AsciiTable table(headers);
    ChangeOutcomeStats aggRle2, aggTage, aggPerc;
    for (std::size_t w = 0; w < W; ++w) {
        auto at = [&](const std::string &n) -> const
            ChangeOutcomeStats & {
                for (std::size_t p = 0; p < P; ++p)
                    if (kSpecNames[p] == n)
                        return cells[w * P + p];
                static const ChangeOutcomeStats none;
                return none;
            };
        aggRle2.merge(at("rle2"));
        aggTage.merge(at("tage"));
        aggPerc.merge(at("perceptron"));
        double bestTable = 0.0;
        for (std::size_t p = 0; p < P; ++p)
            if (kSpecNames[p] != "tage" &&
                kSpecNames[p] != "perceptron")
                bestTable = std::max(
                    bestTable, cells[w * P + p].correctRate());
        double bestNew =
            std::max(at("tage").correctRate(),
                     at("perceptron").correctRate());
        double gap = perfect[w].coverage() - bestTable;
        double closed =
            gap > 0.0 ? (bestNew - bestTable) / gap : 0.0;
        AsciiTable &row = table.row();
        row.cell(names[w]).cell(cells[w * P].changes);
        for (std::size_t p = 0; p < P; ++p)
            row.percentCell(cells[w * P + p].correctRate());
        row.percentCell(perfect[w].coverage());
        row.percentCell(closed);
    }
    table.print(std::cout);

    std::cout << "\nConfidence sweep (aggregate coverage vs "
                 "accuracy among confident):\n";
    AsciiTable sweep({"predictor", "setting", "coverage",
                      "conf accuracy", "correct"});
    for (std::size_t i = 0; i < tageThresholds.size(); ++i)
        sweep.row()
            .cell("tage")
            .cell(std::uint64_t(tageThresholds[i]))
            .percentCell(coverage(tageSweep[i]))
            .percentCell(confAccuracy(tageSweep[i]))
            .percentCell(tageSweep[i].correctRate());
    for (std::size_t i = 0; i < percMargins.size(); ++i)
        sweep.row()
            .cell("perceptron")
            .cell(std::uint64_t(percMargins[i]))
            .percentCell(coverage(percSweep[i]))
            .percentCell(confAccuracy(percSweep[i]))
            .percentCell(percSweep[i].correctRate());
    sweep.print(std::cout);

    if (json_path != "-") {
        std::ofstream os(json_path);
        if (!os) {
            std::cerr << "error: cannot write " << json_path
                      << "\n";
            return 1;
        }
        os << "{\n  \"workloads\": [\n";
        for (std::size_t w = 0; w < W; ++w) {
            os << "    {\"workload\": \"" << names[w]
               << "\", \"perfect_markov1\": "
               << jnum(perfect[w].coverage())
               << ", \"predictors\": {";
            for (std::size_t p = 0; p < P; ++p) {
                os << (p ? ", " : "") << "\"" << kSpecNames[p]
                   << "\": ";
                jsonStats(os, cells[w * P + p]);
            }
            os << "}}" << (w + 1 < W ? "," : "") << "\n";
        }
        os << "  ],\n  \"sweep\": {\n    \"tage\": [";
        for (std::size_t i = 0; i < tageThresholds.size(); ++i)
            os << (i ? ", " : "") << "{\"conf_threshold\": "
               << tageThresholds[i] << ", \"coverage\": "
               << jnum(coverage(tageSweep[i]))
               << ", \"conf_accuracy\": "
               << jnum(confAccuracy(tageSweep[i]))
               << ", \"correct_rate\": "
               << jnum(tageSweep[i].correctRate()) << "}";
        os << "],\n    \"perceptron\": [";
        for (std::size_t i = 0; i < percMargins.size(); ++i)
            os << (i ? ", " : "") << "{\"conf_margin\": "
               << percMargins[i] << ", \"coverage\": "
               << jnum(coverage(percSweep[i]))
               << ", \"conf_accuracy\": "
               << jnum(confAccuracy(percSweep[i]))
               << ", \"correct_rate\": "
               << jnum(percSweep[i].correctRate()) << "}";
        os << "]\n  },\n  \"aggregate\": {\"rle2\": ";
        jsonStats(os, aggRle2);
        os << ", \"tage\": ";
        jsonStats(os, aggTage);
        os << ", \"perceptron\": ";
        jsonStats(os, aggPerc);
        os << "}\n}\n";
        std::cout << "\nwrote " << json_path << "\n";
    }

    double bestNewAgg = std::max(aggTage.correctRate(),
                                 aggPerc.correctRate());
    std::printf("\naggregate: rle2 %.1f%%  tage %.1f%%  "
                "perceptron %.1f%%\n",
                100.0 * aggRle2.correctRate(),
                100.0 * aggTage.correctRate(),
                100.0 * aggPerc.correctRate());
    if (args.has("check-improve") &&
        bestNewAgg <= aggRle2.correctRate()) {
        std::cerr << "FAIL: best new predictor ("
                  << jnum(bestNewAgg)
                  << ") does not beat RLE-2 ("
                  << jnum(aggRle2.correctRate()) << ")\n";
        return 1;
    }
    return 0;
}
