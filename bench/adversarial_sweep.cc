/**
 * @file
 * Adversarial-corpus sweep: scores the classifier, the change
 * predictors and the fault mitigations on the four hostile stressor
 * families (workload/adversarial.hh) next to a synthetic-workload
 * baseline, so regressions against deliberately hard inputs are as
 * visible as regressions on the paper's benchmarks.
 *
 * Per row (one adversarial variant or one synthetic workload):
 *  - classification stability: fraction of intervals in stable
 *    phases, phase count, and fragmentation (phases per underlying
 *    behavior — adversarial rows know their ground truth);
 *  - purity: over stable intervals, the truth-label agreement of the
 *    majority behavior of each phase (adversarial rows only);
 *  - change-prediction correct rate at actual phase changes for the
 *    paper's RLE-2 and the TAGE family;
 *  - phase-ID agreement of a faulted run vs the fault-free run
 *    (signature-target campaign), mitigated and unmitigated.
 *
 * Deterministic at any --jobs: each row is a pure function of its
 * inputs, results return in grid order. `--floors=FILE` turns the
 * sweep into a CI tripwire: every adversarial row's purity and
 * mitigated agreement must meet its family's checked-in floor.
 *
 * Options (beyond the shared --jobs):
 *   --families=CSV  stressor families (default: all four)
 *   --seeds=CSV     generator seeds per family (default 1)
 *   --intervals=N   intervals per adversarial stream (default 600)
 *   --baseline=CSV  synthetic baseline workloads
 *                   (default ammp,gcc/s,gzip/p,mcf; 'none' disables)
 *   --floors=FILE   floor file: `family min_purity min_mit_agree`
 *                   per line; exit 1 on any violation
 *   --json=PATH     row dump (default adversarial_sweep.json;
 *                   '-' disables)
 */

#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/experiment.hh"
#include "analysis/parallel_runner.hh"
#include "bench_common.hh"
#include "common/ascii_table.hh"
#include "common/status.hh"
#include "fault/resilience.hh"
#include "pred/eval.hh"
#include "pred/predictor_spec.hh"
#include "workload/adversarial.hh"

using namespace tpcp;

namespace
{

/** One sweep row: an adversarial variant or a baseline workload. */
struct RowSpec
{
    bool adversarial = false;
    std::string family;     // adversarial rows
    std::uint64_t seed = 1; // adversarial rows
    std::string workload;   // baseline rows
};

struct RowResult
{
    std::string name;
    bool adversarial = false;
    std::string family;
    std::size_t intervals = 0;
    std::size_t behaviors = 0; // 0 = unknown (baseline rows)
    std::uint32_t phases = 0;
    double stableFraction = 0.0;
    double purity = -1.0; // -1 = no ground truth
    double rle2Correct = 0.0;
    double tageCorrect = 0.0;
    double mitAgree = 0.0;
    double unmitAgree = 0.0;
};

/**
 * Majority-truth purity over stable intervals: each stable phase
 * votes for its most common ground-truth behavior, and purity is the
 * fraction of stable intervals matching their phase's majority.
 * 1.0 = the phase partition refines the behavior partition.
 */
double
stablePurity(const std::vector<PhaseId> &phases,
             const std::vector<std::uint32_t> &truth)
{
    std::map<PhaseId, std::map<std::uint32_t, std::uint64_t>> votes;
    std::uint64_t stable = 0;
    for (std::size_t i = 0; i < phases.size(); ++i) {
        if (phases[i] == transitionPhaseId)
            continue;
        ++votes[phases[i]][truth[i]];
        ++stable;
    }
    if (stable == 0)
        return 0.0;
    std::uint64_t agree = 0;
    for (const auto &[phase, counts] : votes) {
        std::uint64_t best = 0;
        for (const auto &[behavior, n] : counts)
            best = std::max(best, n);
        agree += best;
    }
    return static_cast<double>(agree) /
           static_cast<double>(stable);
}

RowResult
runRow(const RowSpec &spec, std::size_t intervals)
{
    trace::IntervalProfile profile;
    std::vector<std::uint32_t> truth;
    RowResult r;
    r.adversarial = spec.adversarial;
    if (spec.adversarial) {
        workload::AdversarialSpec aspec;
        aspec.family = spec.family;
        aspec.seed = spec.seed;
        aspec.intervals = intervals;
        workload::AdversarialTrace adv =
            workload::makeAdversarial(aspec);
        profile = std::move(adv.profile);
        truth = std::move(adv.truth);
        r.behaviors = adv.numBehaviors;
        r.family = spec.family;
    } else {
        profile = trace::getProfileByName(spec.workload);
    }
    r.name = profile.workload();
    r.intervals = profile.numIntervals();

    analysis::ClassificationResult cls = analysis::classifyProfile(
        profile, phase::ClassifierConfig::paperDefault());
    r.phases = cls.numPhases;
    r.stableFraction = 1.0 - cls.transitionFraction;
    if (!truth.empty())
        r.purity = stablePurity(cls.trace.phases, truth);

    r.rle2Correct =
        pred::evalChangeOutcome(cls.trace.phases,
                                *pred::predictorSpecByName("rle2"))
            .correctRate();
    r.tageCorrect =
        pred::evalChangeOutcome(cls.trace.phases,
                                *pred::predictorSpecByName("tage"))
            .correctRate();

    fault::ResilienceOptions ropts;
    ropts.injector.target = fault::Target::SignatureRows;
    ropts.injector.ratePerInterval = 0.05;
    ropts.injector.mitigated = false;
    r.unmitAgree = fault::runResilience(profile, ropts).agreement();
    ropts.injector.mitigated = true;
    r.mitAgree = fault::runResilience(profile, ropts).agreement();
    return r;
}

/** Per-family floors parsed from --floors. */
struct Floor
{
    double purity = 0.0;
    double mitAgree = 0.0;
};

std::map<std::string, Floor>
loadFloors(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        tpcp_raise("cannot read floors file ", path);
    std::map<std::string, Floor> floors;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string family;
        Floor f;
        if (!(ls >> family >> f.purity >> f.mitAgree))
            tpcp_raise("floors file ", path,
                       ": malformed line '", line,
                       "' (want: family purity mit_agree)");
        floors[family] = f;
    }
    return floors;
}

std::string
jsonRow(const RowResult &r)
{
    std::ostringstream os;
    os << "{\"name\": \"" << r.name << "\""
       << ", \"adversarial\": "
       << (r.adversarial ? "true" : "false");
    if (r.adversarial)
        os << ", \"family\": \"" << r.family << "\"";
    os << ", \"intervals\": " << r.intervals
       << ", \"behaviors\": " << r.behaviors
       << ", \"phases\": " << r.phases << ", \"stable_fraction\": "
       << r.stableFraction << ", \"purity\": " << r.purity
       << ", \"rle2_correct\": " << r.rle2Correct
       << ", \"tage_correct\": " << r.tageCorrect
       << ", \"mit_agree\": " << r.mitAgree
       << ", \"unmit_agree\": " << r.unmitAgree << "}";
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseArgs(
        argc, argv,
        {{"families", true,
          "stressor families to sweep (default: all four)"},
         {"seeds", true, "generator seeds per family (default 1)"},
         {"intervals", true,
          "intervals per adversarial stream (default 600)"},
         {"baseline", true,
          "synthetic baseline workloads (default "
          "ammp,gcc/s,gzip/p,mcf; 'none' disables)"},
         {"floors", true,
          "per-family floor file (family purity mit_agree); "
          "exit 1 on violation"},
         {"json", true,
          "write rows as JSON (default adversarial_sweep.json; "
          "'-' disables)"}});

    int rc = 0;
    try {
        std::vector<std::string> families = bench::splitCsv(
            args.get("families",
                     "phase-alias,oscillation,sig-collision,"
                     "drift-ramp"));
        for (const std::string &f : families)
            if (!workload::isAdversarialFamily(f))
                tpcp_raise("unknown adversarial family '", f, "'");
        std::vector<std::uint64_t> seeds;
        for (const std::string &s :
             bench::splitCsv(args.get("seeds", "1")))
            seeds.push_back(
                std::strtoull(s.c_str(), nullptr, 10));
        std::size_t intervals = args.getU64("intervals", 600);
        std::string baseline =
            args.get("baseline", "ammp,gcc/s,gzip/p,mcf");
        std::string json_path =
            args.get("json", "adversarial_sweep.json");

        bench::banner("Adversarial sweep",
                      "hostile stressor corpus vs the synthetic "
                      "baseline");

        std::vector<RowSpec> rows;
        if (baseline != "none")
            for (const std::string &w : bench::splitCsv(baseline)) {
                RowSpec spec;
                spec.workload = w;
                rows.push_back(spec);
            }
        for (const std::string &family : families)
            for (std::uint64_t seed : seeds) {
                RowSpec spec;
                spec.adversarial = true;
                spec.family = family;
                spec.seed = seed;
                rows.push_back(spec);
            }

        auto results = analysis::runIndexed(
            rows.size(), args.jobs, [&](std::size_t i) {
                return runRow(rows[i], intervals);
            });

        AsciiTable table({"workload", "intervals", "behaviors",
                          "phases", "stable", "purity", "rle2",
                          "tage", "mit-agree", "unmit-agree"});
        for (const RowResult &r : results) {
            auto &row = table.row();
            row.cell(r.name)
                .cell(static_cast<std::uint64_t>(r.intervals));
            if (r.behaviors != 0)
                row.cell(static_cast<std::uint64_t>(r.behaviors));
            else
                row.cell(std::string("-"));
            row.cell(static_cast<std::uint64_t>(r.phases))
                .percentCell(r.stableFraction);
            if (r.purity >= 0.0)
                row.percentCell(r.purity);
            else
                row.cell(std::string("-"));
            row.percentCell(r.rle2Correct)
                .percentCell(r.tageCorrect)
                .percentCell(r.mitAgree)
                .percentCell(r.unmitAgree);
        }
        table.print(std::cout);

        if (json_path != "-") {
            std::ofstream out(json_path);
            if (!out)
                tpcp_raise("cannot write ", json_path);
            out << "[\n";
            for (std::size_t i = 0; i < results.size(); ++i)
                out << "  " << jsonRow(results[i])
                    << (i + 1 < results.size() ? "," : "") << "\n";
            out << "]\n";
            if (!out.flush())
                tpcp_raise("cannot write ", json_path);
            std::cout << "\nwrote " << results.size()
                      << " rows to " << json_path << "\n";
        }

        if (args.has("floors")) {
            std::map<std::string, Floor> floors =
                loadFloors(args.get("floors", ""));
            unsigned violations = 0;
            for (const RowResult &r : results) {
                if (!r.adversarial)
                    continue;
                auto it = floors.find(r.family);
                if (it == floors.end())
                    tpcp_raise("floors file has no entry for "
                               "family ", r.family);
                if (r.purity < it->second.purity) {
                    std::cerr << "error: " << r.name << " purity "
                              << r.purity << " below floor "
                              << it->second.purity << "\n";
                    ++violations;
                }
                if (r.mitAgree < it->second.mitAgree) {
                    std::cerr << "error: " << r.name
                              << " mitigated agreement "
                              << r.mitAgree << " below floor "
                              << it->second.mitAgree << "\n";
                    ++violations;
                }
            }
            if (violations != 0) {
                std::cerr << "error: " << violations
                          << " floor violation(s)\n";
                rc = 1;
            } else {
                std::cout << "all adversarial rows meet their "
                             "family floors\n";
            }
        }
    } catch (const Error &e) {
        std::cerr << "error: " << e.what() << "\n";
        rc = 1;
    }
    return rc;
}
