/**
 * @file
 * Ablation (paper section 4.2): dynamic vs static signature bit
 * selection. The paper replaces [25]'s statically chosen bit window
 * (bits 14..21 of each 24-bit counter, tuned for 10M-instruction
 * intervals and 32 counters) with a window derived from the average
 * counter value. A static window tuned for the wrong interval length
 * loses signature resolution; the dynamic scheme adapts
 * automatically. We sweep several static windows at this
 * repository's interval length and compare against dynamic
 * selection.
 */

#include <iostream>

#include "analysis/experiment.hh"
#include "bench_common.hh"
#include "common/ascii_table.hh"
#include "common/bitops.hh"
#include "pred/eval.hh"

using namespace tpcp;

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseArgs(
        argc, argv, {bench::traceFlag()});
    bench::banner("Ablation", "Dynamic vs static bit selection");
    auto profiles = bench::loadAllProfiles(args);

    // The ideal static shift for this interval length: average
    // counter value is about interval / numCounters.
    const unsigned shifts[] = {0, 4, 8, 14};

    phase::ClassifierConfig base;
    base.numCounters = 16;
    base.tableEntries = 32;
    base.similarityThreshold = 0.25;
    base.minCountThreshold = 8;

    // One grid covers both sweeps: [0] dynamic selection,
    // [1..4] static windows, [5..8] bits-per-counter widths.
    std::vector<phase::ClassifierConfig> grid_cfgs;
    {
        phase::ClassifierConfig cfg = base;
        cfg.bitSelection = phase::BitSelection::Dynamic;
        grid_cfgs.push_back(cfg);
        cfg.bitSelection = phase::BitSelection::Static;
        for (unsigned s : shifts) {
            cfg.staticShift = s;
            grid_cfgs.push_back(cfg);
        }
    }
    const unsigned bit_widths[] = {2, 4, 6, 8};
    for (unsigned b : bit_widths) {
        phase::ClassifierConfig cfg = base;
        cfg.bitsPerDim = b;
        grid_cfgs.push_back(cfg);
    }
    auto results = analysis::runGrid(profiles, grid_cfgs, args.jobs);
    const std::size_t cols = grid_cfgs.size();

    std::vector<std::string> headers = {"workload", "dynamic"};
    for (unsigned s : shifts)
        headers.push_back("static<<" + std::to_string(s));
    AsciiTable cov(headers);
    std::vector<double> dyn_col;
    std::vector<std::vector<double>> static_cols(4);

    for (std::size_t w = 0; w < profiles.size(); ++w) {
        cov.row().cell(profiles[w].first);
        const analysis::ClassificationResult &dyn =
            results[w * cols];
        cov.percentCell(dyn.covCpi);
        dyn_col.push_back(dyn.covCpi);

        for (std::size_t s = 0; s < 4; ++s) {
            const analysis::ClassificationResult &res =
                results[w * cols + 1 + s];
            cov.percentCell(res.covCpi);
            static_cols[s].push_back(res.covCpi);
        }
    }
    cov.row().cell("avg").percentCell(bench::mean(dyn_col));
    for (std::size_t s = 0; s < 4; ++s)
        cov.percentCell(bench::mean(static_cols[s]));
    cov.print(std::cout);
    std::cout << "\nClaim check (section 4.2): dynamic selection "
                 "matches the best static\nwindow without per-"
                 "interval-length tuning; badly placed static windows "
                 "hurt.\n\n";

    // Second sweep: bits kept per counter (paper 4.2: "fewer than 6
    // bits per counter produced poor classifications, and using more
    // than 8 bits did not significantly improve results").
    AsciiTable bits({"workload", "2b CoV", "4b CoV", "6b CoV",
                     "8b CoV", "2b mispred", "4b mispred",
                     "6b mispred", "8b mispred"});
    std::vector<std::vector<double>> bit_cols(4), mis_cols(4);
    for (std::size_t w = 0; w < profiles.size(); ++w) {
        bits.row().cell(profiles[w].first);
        std::vector<double> cov_vals, mis_vals;
        for (std::size_t b = 0; b < 4; ++b) {
            const analysis::ClassificationResult &res =
                results[w * cols + 5 + b];
            pred::NextPhaseStats lv = pred::evalNextPhase(
                res.trace.phases, std::nullopt);
            cov_vals.push_back(res.covCpi);
            mis_vals.push_back(1.0 - lv.accuracy());
            bit_cols[b].push_back(res.covCpi);
            mis_cols[b].push_back(1.0 - lv.accuracy());
        }
        for (double v : cov_vals)
            bits.percentCell(v);
        for (double v : mis_vals)
            bits.percentCell(v);
    }
    bits.row().cell("avg");
    for (std::size_t b = 0; b < 4; ++b)
        bits.percentCell(bench::mean(bit_cols[b]));
    for (std::size_t b = 0; b < 4; ++b)
        bits.percentCell(bench::mean(mis_cols[b]));
    std::cout << "CPI CoV and last-value misprediction by signature "
                 "bits per counter\n(dynamic selection):\n";
    bits.print(std::cout);
    std::cout << "\nPaper claim (section 4.2): fewer than 6 bits "
                 "degrades classification.\nMeasured: our synthetic "
                 "region signatures remain separable even at 2\n"
                 "bits (all metrics within ~1pp) - a documented "
                 "workload-model delta; real\nSPEC signatures are "
                 "less cleanly separated. Beyond 8 bits nothing\n"
                 "improves, matching the paper.\n";
    return 0;
}
