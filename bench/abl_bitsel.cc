/**
 * @file
 * Ablation (paper section 4.2): dynamic vs static signature bit
 * selection. The paper replaces [25]'s statically chosen bit window
 * (bits 14..21 of each 24-bit counter, tuned for 10M-instruction
 * intervals and 32 counters) with a window derived from the average
 * counter value. A static window tuned for the wrong interval length
 * loses signature resolution; the dynamic scheme adapts
 * automatically. We sweep several static windows at this
 * repository's interval length and compare against dynamic
 * selection.
 */

#include <iostream>

#include "analysis/experiment.hh"
#include "bench_common.hh"
#include "common/ascii_table.hh"
#include "common/bitops.hh"
#include "pred/eval.hh"

using namespace tpcp;

int
main()
{
    bench::banner("Ablation", "Dynamic vs static bit selection");
    auto profiles = bench::loadAllProfiles();

    // The ideal static shift for this interval length: average
    // counter value is about interval / numCounters.
    const unsigned shifts[] = {0, 4, 8, 14};

    std::vector<std::string> headers = {"workload", "dynamic"};
    for (unsigned s : shifts)
        headers.push_back("static<<" + std::to_string(s));
    AsciiTable cov(headers);
    std::vector<double> dyn_col;
    std::vector<std::vector<double>> static_cols(4);

    for (const auto &[name, profile] : profiles) {
        cov.row().cell(name);
        phase::ClassifierConfig cfg;
        cfg.numCounters = 16;
        cfg.tableEntries = 32;
        cfg.similarityThreshold = 0.25;
        cfg.minCountThreshold = 8;

        cfg.bitSelection = phase::BitSelection::Dynamic;
        analysis::ClassificationResult dyn =
            analysis::classifyProfile(profile, cfg);
        cov.percentCell(dyn.covCpi);
        dyn_col.push_back(dyn.covCpi);

        cfg.bitSelection = phase::BitSelection::Static;
        for (std::size_t s = 0; s < 4; ++s) {
            cfg.staticShift = shifts[s];
            analysis::ClassificationResult res =
                analysis::classifyProfile(profile, cfg);
            cov.percentCell(res.covCpi);
            static_cols[s].push_back(res.covCpi);
        }
    }
    cov.row().cell("avg").percentCell(bench::mean(dyn_col));
    for (std::size_t s = 0; s < 4; ++s)
        cov.percentCell(bench::mean(static_cols[s]));
    cov.print(std::cout);
    std::cout << "\nClaim check (section 4.2): dynamic selection "
                 "matches the best static\nwindow without per-"
                 "interval-length tuning; badly placed static windows "
                 "hurt.\n\n";

    // Second sweep: bits kept per counter (paper 4.2: "fewer than 6
    // bits per counter produced poor classifications, and using more
    // than 8 bits did not significantly improve results").
    const unsigned bit_widths[] = {2, 4, 6, 8};
    AsciiTable bits({"workload", "2b CoV", "4b CoV", "6b CoV",
                     "8b CoV", "2b mispred", "4b mispred",
                     "6b mispred", "8b mispred"});
    std::vector<std::vector<double>> bit_cols(4), mis_cols(4);
    for (const auto &[name, profile] : profiles) {
        bits.row().cell(name);
        std::vector<double> cov_vals, mis_vals;
        for (std::size_t b = 0; b < 4; ++b) {
            phase::ClassifierConfig cfg;
            cfg.numCounters = 16;
            cfg.tableEntries = 32;
            cfg.similarityThreshold = 0.25;
            cfg.minCountThreshold = 8;
            cfg.bitsPerDim = bit_widths[b];
            analysis::ClassificationResult res =
                analysis::classifyProfile(profile, cfg);
            pred::NextPhaseStats lv = pred::evalNextPhase(
                res.trace.phases, std::nullopt);
            cov_vals.push_back(res.covCpi);
            mis_vals.push_back(1.0 - lv.accuracy());
            bit_cols[b].push_back(res.covCpi);
            mis_cols[b].push_back(1.0 - lv.accuracy());
        }
        for (double v : cov_vals)
            bits.percentCell(v);
        for (double v : mis_vals)
            bits.percentCell(v);
    }
    bits.row().cell("avg");
    for (std::size_t b = 0; b < 4; ++b)
        bits.percentCell(bench::mean(bit_cols[b]));
    for (std::size_t b = 0; b < 4; ++b)
        bits.percentCell(bench::mean(mis_cols[b]));
    std::cout << "CPI CoV and last-value misprediction by signature "
                 "bits per counter\n(dynamic selection):\n";
    bits.print(std::cout);
    std::cout << "\nPaper claim (section 4.2): fewer than 6 bits "
                 "degrades classification.\nMeasured: our synthetic "
                 "region signatures remain separable even at 2\n"
                 "bits (all metrics within ~1pp) - a documented "
                 "workload-model delta; real\nSPEC signatures are "
                 "less cleanly separated. Beyond 8 bits nothing\n"
                 "improves, matching the paper.\n";
    return 0;
}
