/**
 * @file
 * Interval-length sensitivity (paper section 3 calls the minimum
 * interval size that still supports code-based classification "an
 * interesting open question" and cites that the technique works from
 * 1M to 100M instructions). We sweep the repository-scale interval
 * length over 50K / 100K / 200K instructions on four representative
 * workloads (the others behave alike) and report CoV, phase counts
 * and transition time.
 *
 * The 50K and 200K profiles are simulated on first run and cached
 * like all others.
 */

#include <iostream>

#include "analysis/experiment.hh"
#include "bench_common.hh"
#include "common/ascii_table.hh"

using namespace tpcp;

int
main()
{
    bench::banner("Ablation", "Interval-length sensitivity");

    const char *names[] = {"ammp", "gcc/s", "gzip/p", "mcf"};
    const InstCount lengths[] = {50'000, 100'000, 200'000};

    AsciiTable cov({"workload", "50K CoV", "100K CoV", "200K CoV"});
    AsciiTable phases({"workload", "50K", "100K", "200K"});
    AsciiTable trans({"workload", "50K trans", "100K trans",
                      "200K trans"});

    for (const char *name : names) {
        cov.row().cell(name);
        phases.row().cell(name);
        trans.row().cell(name);
        for (InstCount len : lengths) {
            trace::ProfileOptions opts;
            opts.intervalLen = len;
            std::cerr << "[profile] " << name << " @" << len
                      << " ...\n";
            trace::IntervalProfile profile =
                trace::getProfileByName(name, opts);
            analysis::ClassificationResult res =
                analysis::classifyProfile(
                    profile,
                    phase::ClassifierConfig::paperDefault());
            cov.percentCell(res.covCpi);
            phases.cell(static_cast<std::uint64_t>(res.numPhases));
            trans.percentCell(res.transitionFraction);
        }
    }

    std::cout << "CPI CoV by interval length:\n";
    cov.print(std::cout);
    std::cout << "\nStable phase IDs:\n";
    phases.print(std::cout);
    std::cout << "\nTransition time:\n";
    trans.print(std::cout);
    std::cout << "\nExpected behavior: code-based classification is "
                 "granularity-robust\n(paper section 3 / [21]): CoV "
                 "stays in the same band across a 4x interval\n"
                 "range. The limits show at the edges - finer "
                 "intervals resolve more\n(sub)phases, while "
                 "intervals large relative to the phase dwells blur\n"
                 "short phases into transitions (gcc at 200K).\n";
    return 0;
}
