/**
 * @file
 * Interval-length sensitivity (paper section 3 calls the minimum
 * interval size that still supports code-based classification "an
 * interesting open question" and cites that the technique works from
 * 1M to 100M instructions). We sweep the repository-scale interval
 * length over 50K / 100K / 200K instructions on four representative
 * workloads (the others behave alike) and report CoV, phase counts
 * and transition time.
 *
 * The 50K and 200K profiles are simulated on first run and cached
 * like all others.
 */

#include <iostream>

#include "analysis/experiment.hh"
#include "bench_common.hh"
#include "common/ascii_table.hh"

using namespace tpcp;

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseArgs(argc, argv);
    bench::banner("Ablation", "Interval-length sensitivity");

    const char *names[] = {"ammp", "gcc/s", "gzip/p", "mcf"};
    const InstCount lengths[] = {50'000, 100'000, 200'000};
    constexpr std::size_t num_lengths = 3;

    // Each cell varies the *profile* (interval length), not just the
    // classifier config, so fan the whole (workload x length) space
    // out with runIndexed; the profile cache serializes duplicate
    // builds per path and profiles of different lengths build in
    // parallel.
    auto results = analysis::runIndexed(
        4 * num_lengths, args.jobs, [&](std::size_t i) {
            trace::ProfileOptions opts;
            opts.intervalLen = lengths[i % num_lengths];
            trace::IntervalProfile profile =
                trace::getProfileByName(names[i / num_lengths],
                                        opts);
            return analysis::classifyProfile(
                profile, phase::ClassifierConfig::paperDefault());
        });

    AsciiTable cov({"workload", "50K CoV", "100K CoV", "200K CoV"});
    AsciiTable phases({"workload", "50K", "100K", "200K"});
    AsciiTable trans({"workload", "50K trans", "100K trans",
                      "200K trans"});

    for (std::size_t w = 0; w < 4; ++w) {
        cov.row().cell(names[w]);
        phases.row().cell(names[w]);
        trans.row().cell(names[w]);
        for (std::size_t l = 0; l < num_lengths; ++l) {
            const analysis::ClassificationResult &res =
                results[w * num_lengths + l];
            cov.percentCell(res.covCpi);
            phases.cell(static_cast<std::uint64_t>(res.numPhases));
            trans.percentCell(res.transitionFraction);
        }
    }

    std::cout << "CPI CoV by interval length:\n";
    cov.print(std::cout);
    std::cout << "\nStable phase IDs:\n";
    phases.print(std::cout);
    std::cout << "\nTransition time:\n";
    trans.print(std::cout);
    std::cout << "\nExpected behavior: code-based classification is "
                 "granularity-robust\n(paper section 3 / [21]): CoV "
                 "stays in the same band across a 4x interval\n"
                 "range. The limits show at the edges - finer "
                 "intervals resolve more\n(sub)phases, while "
                 "intervals large relative to the phase dwells blur\n"
                 "short phases into transitions (gcc at 200K).\n";
    return 0;
}
