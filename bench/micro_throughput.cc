/**
 * @file
 * Self-timed microbenchmarks for the phase-tracking hardware model:
 * the per-branch accumulator update (which must run at commit
 * speed), end-of-interval classification, signature compression and
 * comparison, past-signature-table match scans and predictor
 * updates. These back the paper's feasibility claim that
 * classification needs only "a counter, a hash, and an accumulator
 * update".
 *
 * Results are printed as a table and, by default, also written as
 * machine-readable JSON (BENCH_throughput.json) so CI can diff a run
 * against the checked-in baseline with tools/compare_throughput.py.
 * Each repeat times enough iterations to cover --min-time seconds
 * and the best repeat is reported, which filters scheduler noise on
 * the 1-core CI container.
 */

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "common/rng.hh"
#include "common/simd.hh"
#include "phase/accumulator_table.hh"
#include "phase/classifier.hh"
#include "phase/signature.hh"
#include "phase/signature_table.hh"
#include "pred/change_predictor.hh"
#include "serve/flow_sched.hh"
#include "serve/producer.hh"
#include "serve/ring_buffer.hh"
#include "serve/tenant_registry.hh"

using namespace tpcp;

namespace
{

/** Accumulated by every benchmark body so work cannot be elided. */
std::uint64_t g_sink = 0;

/** One benchmark's throughput, in items (unit) per second. */
struct BenchResult
{
    std::string name;
    std::string config;
    std::string unit;
    double itemsPerSec = 0.0;
};

/**
 * Times @p body (which performs @p itemsPerCall units of work per
 * invocation) with geometric calibration: the batch size doubles
 * until one batch spans at least @p min_time seconds. Best of
 * @p repeats batches wins.
 */
template <typename F>
double
measure(F &&body, std::uint64_t itemsPerCall, double min_time,
        int repeats)
{
    using clock = std::chrono::steady_clock;
    std::uint64_t calls = 1;
    double best = 0.0;
    for (int rep = 0; rep < repeats;) {
        auto t0 = clock::now();
        for (std::uint64_t c = 0; c < calls; ++c)
            body();
        double sec = std::chrono::duration<double>(clock::now() - t0)
                         .count();
        if (sec < min_time) {
            // Grow the batch instead of counting a too-short run:
            // sub-millisecond timings are dominated by clock
            // granularity.
            calls *= 2;
            continue;
        }
        double rate =
            static_cast<double>(calls * itemsPerCall) / sec;
        if (rate > best)
            best = rate;
        ++rep;
    }
    return best;
}

std::vector<Addr>
branchPcs(std::size_t n)
{
    Rng rng(std::uint64_t{0x1234});
    std::vector<Addr> pcs(n);
    for (auto &pc : pcs)
        pc = 0x400000 + (rng.nextBounded(4096) * 4);
    return pcs;
}

/** Per-branch accumulator update, one recordBranch call per event. */
BenchResult
benchAccumUpdate(unsigned counters, double min_time, int repeats)
{
    phase::AccumulatorTable acc(counters);
    auto pcs = branchPcs(1024);
    std::size_t i = 0;
    double rate = measure(
        [&] {
            acc.recordBranch(pcs[i++ & 1023], 12);
            g_sink += acc.counters()[0];
        },
        1, min_time, repeats);
    return {"accum_update", "counters=" + std::to_string(counters),
            "branches", rate};
}

/** Batched accumulator update: the trace-replay hot path. */
BenchResult
benchAccumBatched(unsigned counters, double min_time, int repeats)
{
    constexpr std::size_t kBatch = 4096;
    phase::AccumulatorTable acc(counters);
    auto pcs = branchPcs(1024);
    Rng rng(std::uint64_t{0x5678});
    std::vector<phase::BranchEvent> events(kBatch);
    for (std::size_t i = 0; i < kBatch; ++i)
        events[i] = {pcs[rng.nextBounded(1024)], 12};
    double rate = measure(
        [&] {
            acc.recordBranches(events.data(), events.size());
            g_sink += acc.counters()[0];
            acc.reset();
        },
        kBatch, min_time, repeats);
    return {"accum_batched", "counters=" + std::to_string(counters),
            "branches", rate};
}

/** Allocation-free signature compression of a warm accumulator. */
BenchResult
benchSignatureCompress(unsigned counters, double min_time,
                       int repeats)
{
    phase::AccumulatorTable acc(counters);
    auto pcs = branchPcs(1024);
    for (std::size_t i = 0; i < 8192; ++i)
        acc.recordBranch(pcs[i & 1023], 12);
    std::vector<std::uint8_t> row(counters, 0);
    double rate = measure(
        [&] {
            g_sink += phase::Signature::compressTo(
                acc.counters(), acc.totalIncrement(), 6,
                phase::BitSelection::Dynamic, 0, row.data());
        },
        1, min_time, repeats);
    return {"sig_compress", "counters=" + std::to_string(counters),
            "signatures", rate};
}

/** Normalized Manhattan difference between two signatures. */
BenchResult
benchSignatureDistance(unsigned dims, double min_time, int repeats)
{
    Rng rng(std::uint64_t{7});
    std::vector<std::uint8_t> a(dims), b(dims);
    for (std::size_t i = 0; i < dims; ++i) {
        a[i] = static_cast<std::uint8_t>(rng.nextBounded(64));
        b[i] = static_cast<std::uint8_t>(rng.nextBounded(64));
    }
    phase::Signature sa(a, 6), sb(b, 6);
    double rate = measure(
        [&] { g_sink += sa.difference(sb) < 0.5 ? 1 : 0; }, 1,
        min_time, repeats);
    return {"sig_distance", "dims=" + std::to_string(dims), "pairs",
            rate};
}

/**
 * A full match() scan of a populated past-signature table with
 * realistic queries: most probes miss (forcing a walk over every
 * entry), some hit.
 */
BenchResult
benchMatchScan(unsigned entries, double min_time, int repeats)
{
    phase::SignatureTable table(entries, 6);
    Rng rng(std::uint64_t{21});
    constexpr unsigned kDims = 16;
    auto randomRow = [&] {
        std::vector<std::uint8_t> d(kDims);
        for (auto &v : d)
            v = static_cast<std::uint8_t>(rng.nextBounded(64));
        return d;
    };
    std::vector<phase::Signature> queries;
    for (unsigned i = 0; i < entries; ++i) {
        phase::Signature s(randomRow(), 6);
        table.insert(s, 0.25);
        if (i % 4 == 0)
            queries.push_back(s); // will (nearly) hit
    }
    for (int i = 0; i < 32; ++i)
        queries.emplace_back(randomRow(), 6); // will likely miss
    std::size_t qi = 0;
    double rate = measure(
        [&] {
            auto m = table.match(queries[qi++ % queries.size()],
                                 phase::MatchPolicy::FirstMatch);
            g_sink += m ? m.index : 0;
        },
        1, min_time, repeats);
    return {"match_scan", "entries=" + std::to_string(entries),
            "scans", rate};
}

/** The synthetic phase stream shared by the classify benchmarks:
 * dwell on one code shape for a while, then move on, cycling through
 * more shapes than the table holds. Returns one shape index per
 * interval. */
std::vector<unsigned>
shapeStream(Rng &rng, std::vector<std::vector<Addr>> &shapes)
{
    constexpr unsigned kShapes = 24;
    shapes.resize(kShapes);
    for (unsigned s = 0; s < kShapes; ++s) {
        shapes[s].resize(64);
        for (auto &pc : shapes[s])
            pc = 0x10000 * (s + 1) + 4 * rng.nextBounded(512);
    }
    std::vector<unsigned> stream(4096);
    unsigned cur = 0;
    for (auto &s : stream) {
        s = cur % kShapes;
        if (rng.nextBool(0.1))
            ++cur;
    }
    return stream;
}

/**
 * Batched replay classification at the paper-default configuration:
 * the per-interval accumulator snapshots of the synthetic phase
 * stream are pre-gathered (as the profile-replay harnesses store
 * them) and classified via classifyIntervals(). This is the
 * sweep/fault-campaign hot path the throughput ceiling is stated
 * against. Note the unit is "replayed-intervals": the kernel's
 * semantics changed from the pre-SIMD online loop (see
 * classify_online for that), and the unit string marks the break so
 * compare_throughput.py refuses apples-to-oranges ratios.
 */
BenchResult
benchClassifyLoop(double min_time, int repeats)
{
    phase::ClassifierConfig cfg =
        phase::ClassifierConfig::paperDefault();
    Rng rng(std::uint64_t{99});
    std::vector<std::vector<Addr>> shapes;
    std::vector<unsigned> stream = shapeStream(rng, shapes);
    // Pre-gather each interval's raw accumulator snapshot.
    phase::AccumulatorTable acc(cfg.numCounters);
    std::vector<std::vector<std::uint32_t>> raws;
    std::vector<InstCount> totals;
    raws.reserve(stream.size());
    totals.reserve(stream.size());
    for (unsigned s : stream) {
        const auto &pcs = shapes[s];
        for (int b = 0; b < 256; ++b)
            acc.recordBranch(pcs[b & 63], 12);
        raws.push_back(acc.counters());
        totals.push_back(acc.totalIncrement());
        acc.reset();
    }
    std::vector<phase::RawInterval> views(raws.size());
    for (std::size_t i = 0; i < raws.size(); ++i)
        views[i] = {raws[i].data(), totals[i], 1.0};
    std::vector<phase::ClassifyResult> results(views.size());
    phase::PhaseClassifier classifier(cfg);
    double rate = measure(
        [&] {
            classifier.classifyIntervals(views.data(), views.size(),
                                         results.data());
            g_sink += results.back().phase;
        },
        views.size(), min_time, repeats);
    return {"classify_loop", "paper_default", "replayed-intervals",
            rate};
}

/**
 * End-to-end online classify loop at the paper-default
 * configuration: 256 recordBranch() calls per interval, then
 * endInterval() — the hardware-style operation mode, dominated by
 * the per-branch accumulator updates rather than classification.
 */
BenchResult
benchClassifyOnline(double min_time, int repeats)
{
    phase::ClassifierConfig cfg =
        phase::ClassifierConfig::paperDefault();
    phase::PhaseClassifier classifier(cfg);
    Rng rng(std::uint64_t{99});
    std::vector<std::vector<Addr>> shapes;
    std::vector<unsigned> stream = shapeStream(rng, shapes);
    std::size_t interval = 0;
    double rate = measure(
        [&] {
            const auto &pcs = shapes[stream[interval++ & 4095]];
            for (int b = 0; b < 256; ++b)
                classifier.recordBranch(pcs[b & 63], 12);
            auto res = classifier.endInterval(1.0);
            g_sink += res.phase;
        },
        1, min_time, repeats);
    return {"classify_online", "paper_default", "intervals", rate};
}

/**
 * Streaming-service ingest: the full per-packet consumer path —
 * ring transfer, frame decode and validation, tenant lookup and
 * raw-counter classification — on pre-accumulated interval packets,
 * cycling round-robin over the resident tenants.
 */
BenchResult
benchServeIngest(unsigned tenants, double min_time, int repeats)
{
    serve::RegistryConfig rc;
    rc.maxResident = tenants;
    serve::TenantRegistry registry(rc);
    serve::SpscRing ring(1u << 20);
    const serve::EncodedStream stream = serve::encodeSyntheticStream(
        7, 512, rc.tracker.classifier.numCounters);
    std::vector<std::uint64_t> seq(tenants, 0);
    std::vector<std::uint8_t> frame, popped;
    serve::IntervalPacket pkt;
    std::size_t i = 0;
    unsigned t = 0;
    double rate = measure(
        [&] {
            frame = stream[i++ & 511];
            serve::restampPacket(frame.data(), t, seq[t]++);
            ring.tryPush(frame.data(),
                         static_cast<std::uint32_t>(frame.size()));
            ring.tryPop(popped);
            serve::decodePacket(popped.data(), popped.size(), pkt);
            g_sink += registry.deliver(pkt);
            if (++t == tenants)
                t = 0;
        },
        1, min_time, repeats);
    return {"serve_ingest", "tenants=" + std::to_string(tenants),
            "packets", rate};
}

/**
 * Streaming-service ingest through the resilience drain: the same
 * per-packet consumer path as serve_ingest, but staged through the
 * FlowScheduler (token refill, DRR service order) the way a
 * fairness-enabled partition drains. The knobs are set so nothing is
 * ever shed or throttled — the row measures pure scheduler overhead
 * against the serve_ingest FIFO rows, batched per drain cycle like
 * the real service.
 */
BenchResult
benchServeFairIngest(unsigned tenants, double min_time, int repeats)
{
    constexpr std::size_t kCycle = 64; // frames per drain cycle
    serve::RegistryConfig rc;
    rc.maxResident = tenants;
    serve::TenantRegistry registry(rc);
    serve::SpscRing ring(1u << 20);
    serve::FairnessConfig fc;
    fc.ratePerCycle = kCycle; // never throttles at this load
    fc.drrQuantum = 1;
    fc.maxBacklog = 2 * kCycle; // never sheds
    serve::FlowScheduler sched(fc);
    const serve::EncodedStream stream = serve::encodeSyntheticStream(
        7, 512, rc.tracker.classifier.numCounters);
    std::vector<std::uint64_t> seq(tenants, 0);
    std::vector<std::uint8_t> frame, popped;
    serve::IntervalPacket pkt;
    std::size_t i = 0;
    unsigned t = 0;
    double rate = measure(
        [&] {
            for (std::size_t k = 0; k < kCycle; ++k) {
                frame = stream[i++ & 511];
                serve::restampPacket(frame.data(), t, seq[t]++);
                ring.tryPush(
                    frame.data(),
                    static_cast<std::uint32_t>(frame.size()));
                ring.tryPop(popped);
                std::uint64_t tenant = 0;
                serve::peekPacketTenant(popped.data(),
                                        popped.size(), tenant);
                sched.stage(tenant, popped.data(), popped.size());
                if (++t == tenants)
                    t = 0;
            }
            sched.beginCycle();
            sched.drain(kCycle, [&](std::uint64_t tenant,
                                    const std::vector<std::uint8_t>
                                        &buf) {
                (void)tenant;
                serve::decodePacket(buf.data(), buf.size(), pkt);
                g_sink += registry.deliver(pkt);
            });
        },
        kCycle, min_time, repeats);
    return {"serve_fair", "tenants=" + std::to_string(tenants),
            "packets", rate};
}

/** Markov change-predictor update rate. */
BenchResult
benchChangePredictor(double min_time, int repeats)
{
    pred::ChangePredictor predictor(
        pred::ChangePredictorConfig::rle(2));
    Rng rng(std::uint64_t{5});
    std::vector<PhaseId> stream;
    PhaseId cur = 1;
    for (int i = 0; i < 4096; ++i) {
        stream.push_back(cur);
        if (rng.nextBool(0.2))
            cur = 1 + rng.nextBounded(8);
    }
    std::size_t i = 0;
    double rate = measure(
        [&] {
            auto out = predictor.observe(stream[i++ & 4095]);
            g_sink += out.has_value() ? 1 : 0;
        },
        1, min_time, repeats);
    return {"change_pred", "rle_order2", "observations", rate};
}

void
writeJson(const std::string &path,
          const std::vector<BenchResult> &results, double min_time,
          int repeats)
{
    std::ofstream out(path);
    if (!out) {
        std::cerr << "error: cannot write " << path << "\n";
        std::exit(1);
    }
    out << "{\n  \"version\": 1,\n  \"min_time_sec\": " << min_time
        << ",\n  \"repeats\": " << repeats << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const BenchResult &r = results[i];
        out << "    {\"name\": \"" << r.name << "\", \"config\": \""
            << r.config << "\", \"unit\": \"" << r.unit
            << "\", \"items_per_sec\": " << std::uint64_t(r.itemsPerSec)
            << "}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseArgs(
        argc, argv,
        {{"json", true,
          "write machine-readable results (default "
          "BENCH_throughput.json; '-' disables)"},
         {"min-time", true,
          "minimum seconds timed per repeat (default 0.3)"},
         {"repeats", true,
          "timed repeats per benchmark, best wins (default 3)"}});
    double min_time = args.getDouble("min-time", 0.3);
    int repeats = static_cast<int>(args.getU64("repeats", 3));
    std::string json_path = args.get("json", "BENCH_throughput.json");

    std::cerr << "[micro_throughput] simd level: "
              << simd::levelName(simd::active()) << "\n";

    std::vector<BenchResult> results;
    for (unsigned c : {16u, 32u, 64u})
        results.push_back(benchAccumUpdate(c, min_time, repeats));
    for (unsigned c : {16u, 32u, 64u})
        results.push_back(benchAccumBatched(c, min_time, repeats));
    for (unsigned c : {16u, 32u})
        results.push_back(
            benchSignatureCompress(c, min_time, repeats));
    for (unsigned d : {16u, 64u})
        results.push_back(
            benchSignatureDistance(d, min_time, repeats));
    for (unsigned e : {32u, 128u})
        results.push_back(benchMatchScan(e, min_time, repeats));
    results.push_back(benchClassifyLoop(min_time, repeats));
    results.push_back(benchClassifyOnline(min_time, repeats));
    results.push_back(benchChangePredictor(min_time, repeats));
    for (unsigned t : {1u, 4u, 16u})
        results.push_back(benchServeIngest(t, min_time, repeats));
    for (unsigned t : {1u, 4u, 16u})
        results.push_back(
            benchServeFairIngest(t, min_time, repeats));

    std::printf("%-14s %-14s %15s  %s\n", "benchmark", "config",
                "items/sec", "unit");
    for (const BenchResult &r : results)
        std::printf("%-14s %-14s %15.0f  %s/sec\n", r.name.c_str(),
                    r.config.c_str(), r.itemsPerSec, r.unit.c_str());

    if (json_path != "-") {
        writeJson(json_path, results, min_time, repeats);
        std::cerr << "[micro_throughput] wrote " << results.size()
                  << " results to " << json_path << "\n";
    }
    // Keep the sink observable so no benchmark body can be elided.
    std::fprintf(stderr, "[micro_throughput] sink=%llu\n",
                 static_cast<unsigned long long>(g_sink));
    return 0;
}
