/**
 * @file
 * Google-benchmark microbenchmarks for the phase-tracking hardware
 * model: the per-branch accumulator update (which must run at commit
 * speed), end-of-interval classification, signature comparison and
 * predictor updates. These back the paper's feasibility claim that
 * classification needs only "a counter, a hash, and an accumulator
 * update".
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hh"
#include "phase/accumulator_table.hh"
#include "phase/classifier.hh"
#include "phase/signature.hh"
#include "pred/change_predictor.hh"
#include "pred/eval.hh"

using namespace tpcp;

namespace
{

std::vector<Addr>
branchPcs(std::size_t n)
{
    Rng rng(std::uint64_t{0x1234});
    std::vector<Addr> pcs(n);
    for (auto &pc : pcs)
        pc = 0x400000 + (rng.nextBounded(4096) * 4);
    return pcs;
}

void
BM_AccumulatorUpdate(benchmark::State &state)
{
    phase::AccumulatorTable acc(
        static_cast<unsigned>(state.range(0)));
    auto pcs = branchPcs(1024);
    std::size_t i = 0;
    for (auto _ : state) {
        acc.recordBranch(pcs[i++ & 1023], 12);
        benchmark::DoNotOptimize(acc.counters().data());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AccumulatorUpdate)->Arg(16)->Arg(32)->Arg(64);

void
BM_SignatureCompression(benchmark::State &state)
{
    phase::AccumulatorTable acc(
        static_cast<unsigned>(state.range(0)));
    auto pcs = branchPcs(1024);
    for (std::size_t i = 0; i < 8192; ++i)
        acc.recordBranch(pcs[i & 1023], 12);
    for (auto _ : state) {
        phase::Signature sig = phase::Signature::fromAccumulators(
            acc.counters(), acc.totalIncrement(), 6,
            phase::BitSelection::Dynamic);
        benchmark::DoNotOptimize(sig.weight());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SignatureCompression)->Arg(16)->Arg(32);

void
BM_SignatureDistance(benchmark::State &state)
{
    Rng rng(std::uint64_t{7});
    std::vector<std::uint8_t> a(16), b(16);
    for (std::size_t i = 0; i < 16; ++i) {
        a[i] = static_cast<std::uint8_t>(rng.nextBounded(64));
        b[i] = static_cast<std::uint8_t>(rng.nextBounded(64));
    }
    phase::Signature sa(a, 6), sb(b, 6);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sa.difference(sb));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SignatureDistance);

void
BM_EndIntervalClassification(benchmark::State &state)
{
    phase::ClassifierConfig cfg =
        phase::ClassifierConfig::paperDefault();
    phase::PhaseClassifier classifier(cfg);
    auto pcs = branchPcs(1024);
    Rng rng(std::uint64_t{99});
    std::size_t i = 0;
    for (auto _ : state) {
        // A few hundred branches per interval, then classify.
        for (int b = 0; b < 256; ++b)
            classifier.recordBranch(pcs[i++ & 1023], 12);
        auto res = classifier.endInterval(1.0 + rng.nextDouble());
        benchmark::DoNotOptimize(res.phase);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EndIntervalClassification);

void
BM_ChangePredictorObserve(benchmark::State &state)
{
    pred::ChangePredictor predictor(
        pred::ChangePredictorConfig::rle(2));
    Rng rng(std::uint64_t{5});
    // A synthetic phase stream with runs of geometric length.
    std::vector<PhaseId> stream;
    PhaseId cur = 1;
    for (int i = 0; i < 4096; ++i) {
        stream.push_back(cur);
        if (rng.nextBool(0.2))
            cur = 1 + rng.nextBounded(8);
    }
    std::size_t i = 0;
    for (auto _ : state) {
        auto out = predictor.observe(stream[i++ & 4095]);
        benchmark::DoNotOptimize(out.has_value());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChangePredictorObserve);

} // namespace

BENCHMARK_MAIN();
