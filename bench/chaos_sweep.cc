/**
 * @file
 * Chaos sweep: scores the streaming service's overload and damage
 * resilience with deterministic lockstep cells — push a scripted
 * packet schedule, run drain cycles inline (ServiceLoop::runCycle),
 * and measure what the counters say. No wall clock, no real producer
 * threads, no RNG outside the fault injector's own PCG stream, so
 * every cell's metrics are bit-identical at any --jobs count.
 *
 * Cells:
 *  - fairness:   64 co-tenants on 4 partitions, one sig-collision
 *                aggressor (workload/adversarial) offering 2x the
 *                partition's service budget. Jain's fairness index
 *                over per-tenant delivered counts, baseline FIFO
 *                drain vs rate-limit + DRR.
 *  - overload:   uniform 1x/2x/4x offered load against a fixed cycle
 *                budget; goodput degrades smoothly, Jain stays flat,
 *                and the conservation identity pushed == delivered +
 *                malformed + rejected + shed + quarantine-drops holds
 *                exactly at every multiplier.
 *  - quarantine: a malformed-frame flood trips quarantine; the
 *                backoff expires and the tenant is readmitted; every
 *                co-tenant's phase-ID stream stays byte-identical to
 *                the batch path throughout.
 *  - migration:  a mid-run migrate-out / migrate-in handoff replays
 *                to the exact batch phase streams, and a campaign of
 *                damaged bundles (torn manifest, flipped or missing
 *                checkpoint, missing manifest) is rejected with
 *                nothing partially applied.
 *  - checkpoint-chaos: eviction churn with the ServeCheckpoint and
 *                ServeFrame fault targets armed; every torn or
 *                corrupt checkpoint resume fails recoverably and the
 *                conservation identity still closes.
 *
 * `--floors=FILE` turns the sweep into a CI tripwire: each `metric
 * min_value` line must be met by the produced metric of that name;
 * exit 1 on any violation or on any floor naming an unknown metric.
 *
 * Options (beyond the shared --jobs):
 *   --cycles=N     push cycles for the fairness cell (default 400)
 *   --floors=FILE  floor file (`metric min_value` lines, # comments)
 *   --json=PATH    metric dump (default chaos_sweep.json;
 *                  '-' disables)
 */

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/parallel_runner.hh"
#include "bench_common.hh"
#include "common/ascii_table.hh"
#include "common/status.hh"
#include "fault/injector.hh"
#include "serve/migration.hh"
#include "serve/service.hh"
#include "workload/adversarial.hh"

using namespace tpcp;
using namespace tpcp::serve;

namespace
{

/** One scored metric (what the floors file keys on). */
struct Metric
{
    std::string cell;
    std::string name;
    double value = 0.0;
};

/** Jain's fairness index: (sum x)^2 / (n * sum x^2); 1.0 = equal
 * shares, 1/n = one tenant took everything. */
double
jainIndex(const std::vector<double> &xs)
{
    double sum = 0.0, sq = 0.0;
    for (double x : xs) {
        sum += x;
        sq += x * x;
    }
    if (sq == 0.0)
        return 1.0;
    return sum * sum / (static_cast<double>(xs.size()) * sq);
}

/** Fresh scratch directory under the system temp dir. */
std::string
scratchDir(const std::string &name)
{
    std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("tpcp_chaos_" + name);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir.string();
}

/** The zero-silent-loss identity every cell closes with. */
double
conservation(const ServeCounters &c, std::uint64_t pushed)
{
    const std::uint64_t accounted =
        c.packets + c.malformedPackets + c.rejectedPackets +
        c.shedPackets + c.quarantineDrops;
    return accounted == pushed ? 1.0 : 0.0;
}

/** Pushes one frame, restamped for (tenant, seq); a full ring is a
 * counted producer-side drop, exactly like BackpressurePolicy::Drop
 * (the sequence still advances, so the consumer sees the gap). */
bool
pushFrame(ServiceLoop &loop, unsigned partition,
          std::vector<std::uint8_t> &scratch,
          const std::vector<std::uint8_t> &frame,
          std::uint64_t tenant, std::uint64_t seq)
{
    scratch = frame;
    restampPacket(scratch.data(), tenant, seq);
    return loop.ring(partition).tryPush(
        scratch.data(), static_cast<std::uint32_t>(scratch.size()));
}

/** Signals every producer done and drains the service to empty. */
void
drainToCompletion(ServiceLoop &loop)
{
    for (unsigned p = 0; p < loop.numPartitions(); ++p)
        loop.producerDone(p);
    while (loop.runCycle() != 0) {
    }
}

/** Per-tenant delivered counts over [0, tenants). */
std::vector<double>
deliveredPerTenant(const ServiceLoop &loop, std::uint64_t tenants)
{
    std::vector<double> out(tenants, 0.0);
    for (std::uint64_t t : loop.allTenantIds())
        if (t < tenants)
            out[static_cast<std::size_t>(t)] = static_cast<double>(
                loop.tenantCounters(t).packets);
    return out;
}

/**
 * The fairness cell: tenant t lives on partition t % 4; tenant 0 is
 * the aggressor, replaying the sig-collision adversarial stream at
 * 17 frames/cycle while every co-tenant offers 1/cycle — partition 0
 * sees 2x its 16-frame service budget. Returns the Jain index over
 * all 64 delivered counts plus the conservation bit.
 */
std::vector<Metric>
runFairnessCell(std::size_t cycles, bool resilient,
                double &jain_out)
{
    constexpr unsigned kPartitions = 4;
    constexpr std::uint64_t kTenants = 64;
    constexpr std::uint64_t kAggressor = 0;
    constexpr std::size_t kAggressorRate = 17;
    constexpr std::uint64_t kBudget = 16;

    ServeOptions opts;
    opts.producers = kPartitions;
    opts.registry.maxResident = 32;
    opts.registry.checkpointDir =
        scratchDir(resilient ? "fair_res" : "fair_base");
    if (resilient) {
        opts.fairness.ratePerCycle = 1;
        opts.fairness.burst = 2;
        opts.fairness.drrQuantum = 1;
        opts.fairness.maxBacklog = 8;
        opts.fairness.cycleBudget = kBudget;
    } else {
        // The baseline models the same service capacity the only way
        // FIFO can: a 16-frame drain batch and a small ring, so the
        // aggressor's burst crowds the co-tenants out at the ring.
        opts.drainBatch = kBudget;
        opts.ringBytes = 1u << 16;
    }
    ServiceLoop loop(opts);

    const unsigned dims =
        opts.registry.tracker.classifier.numCounters;
    workload::AdversarialSpec aspec;
    aspec.family = "sig-collision";
    aspec.intervals = 600;
    const EncodedStream aggressor = encodeProfileStream(
        workload::makeAdversarial(aspec).profile, dims, 0);
    std::vector<EncodedStream> victims;
    victims.reserve(kTenants);
    for (std::uint64_t t = 0; t < kTenants; ++t)
        victims.push_back(
            encodeSyntheticStream(100 + t, cycles, dims));

    std::uint64_t pushed = 0;
    std::vector<std::uint8_t> scratch;
    std::uint64_t aggressor_seq = 0;
    for (std::size_t cycle = 0; cycle < cycles; ++cycle) {
        // The aggressor shouts first each cycle (greedy arrival).
        for (std::size_t k = 0; k < kAggressorRate; ++k) {
            const auto &frame =
                aggressor[aggressor_seq % aggressor.size()];
            if (pushFrame(loop, 0, scratch, frame, kAggressor,
                          aggressor_seq))
                ++pushed;
            ++aggressor_seq;
        }
        for (std::uint64_t t = 1; t < kTenants; ++t)
            if (pushFrame(loop, t % kPartitions, scratch,
                          victims[t][cycle], t, cycle))
                ++pushed;
        loop.runCycle();
    }
    drainToCompletion(loop);

    const std::string mode = resilient ? "resilient" : "baseline";
    jain_out = jainIndex(deliveredPerTenant(loop, kTenants));
    std::vector<Metric> ms;
    ms.push_back({"fairness", "fairness_" + mode + "_jain",
                  jain_out});
    ms.push_back({"fairness", "fairness_" + mode + "_conservation",
                  conservation(loop.counters(), pushed)});
    return ms;
}

/** Uniform overload: 16 tenants each offering `mult` frames/cycle
 * against a 16-frame budget at rate 1/tenant. */
std::vector<Metric>
runOverloadCell(std::size_t cycles)
{
    constexpr std::uint64_t kTenants = 16;
    std::vector<Metric> ms;
    for (std::uint64_t mult : {1u, 2u, 4u}) {
        ServeOptions opts;
        opts.producers = 1;
        opts.registry.maxResident = kTenants;
        opts.fairness.ratePerCycle = 1;
        opts.fairness.burst = 2;
        opts.fairness.drrQuantum = 1;
        opts.fairness.maxBacklog = 4;
        opts.fairness.cycleBudget = kTenants;
        ServiceLoop loop(opts);

        const unsigned dims =
            opts.registry.tracker.classifier.numCounters;
        std::vector<EncodedStream> streams;
        for (std::uint64_t t = 0; t < kTenants; ++t)
            streams.push_back(encodeSyntheticStream(
                300 + t, cycles * mult, dims));

        std::uint64_t pushed = 0, offered = 0;
        std::vector<std::uint8_t> scratch;
        for (std::size_t cycle = 0; cycle < cycles; ++cycle) {
            for (std::uint64_t t = 0; t < kTenants; ++t)
                for (std::uint64_t k = 0; k < mult; ++k) {
                    const std::uint64_t seq = cycle * mult + k;
                    ++offered;
                    if (pushFrame(loop, 0, scratch,
                                  streams[t][seq], t, seq))
                        ++pushed;
                }
            loop.runCycle();
        }
        drainToCompletion(loop);

        const ServeCounters c = loop.counters();
        const std::string tag =
            "overload_x" + std::to_string(mult) + "_";
        ms.push_back({"overload", tag + "jain",
                      jainIndex(deliveredPerTenant(loop, kTenants))});
        ms.push_back({"overload", tag + "goodput",
                      offered == 0 ? 0.0
                                   : static_cast<double>(c.packets) /
                                         static_cast<double>(offered)});
        ms.push_back({"overload", tag + "conservation",
                      conservation(c, pushed)});
    }
    return ms;
}

/** Malformed-flood quarantine: trip it, serve the backoff, readmit —
 * with every co-tenant's phase stream staying batch-identical. */
std::vector<Metric>
runQuarantineCell()
{
    constexpr std::uint64_t kTenants = 8;
    constexpr std::uint64_t kAggressor = 0;
    constexpr std::size_t kCycles = 48;
    constexpr std::size_t kMalformedCycles = 8;

    ServeOptions opts;
    opts.producers = 1;
    opts.registry.maxResident = kTenants;
    opts.registry.recordPhases = true;
    opts.registry.checkpointDir = scratchDir("quarantine");
    opts.registry.quarantine.offenseThreshold = 4;
    opts.registry.quarantine.offenseWindow = 256;
    opts.registry.quarantine.backoffBase = 64;
    opts.fairness.cycleBudget = 64; // staging path, ample budget
    ServiceLoop loop(opts);

    const unsigned dims =
        opts.registry.tracker.classifier.numCounters;
    std::vector<EncodedStream> streams;
    for (std::uint64_t t = 0; t < kTenants; ++t)
        streams.push_back(
            encodeSyntheticStream(500 + t, kCycles, dims));

    std::uint64_t pushed = 0;
    std::vector<std::uint8_t> scratch;
    for (std::size_t cycle = 0; cycle < kCycles; ++cycle) {
        // The aggressor floods malformed frames (readable header,
        // truncated payload) first, then behaves; co-tenants are
        // clean throughout.
        scratch = streams[kAggressor][cycle];
        restampPacket(scratch.data(), kAggressor, cycle);
        if (cycle < kMalformedCycles)
            scratch.resize(kPacketHeaderBytes + 12);
        if (loop.ring(0).tryPush(
                scratch.data(),
                static_cast<std::uint32_t>(scratch.size())))
            ++pushed;
        for (std::uint64_t t = 1; t < kTenants; ++t)
            if (pushFrame(loop, 0, scratch, streams[t][cycle], t,
                          cycle))
                ++pushed;
        loop.runCycle();
    }
    drainToCompletion(loop);

    const ServeCounters c = loop.counters();
    const bool transitions = c.quarantines >= 1 &&
                             c.quarantineDrops >= 1 &&
                             c.readmissions >= 1;
    bool identity = true;
    for (std::uint64_t t = 1; t < kTenants; ++t)
        identity = identity &&
                   loop.phaseStream(t) ==
                       batchPhaseStream(streams[t],
                                        opts.registry.tracker);
    return {{"quarantine", "quarantine_transitions",
             transitions ? 1.0 : 0.0},
            {"quarantine", "quarantine_identity",
             identity ? 1.0 : 0.0},
            {"quarantine", "quarantine_conservation",
             conservation(c, pushed)}};
}

/** Lockstep replay of intervals [from, to) for every tenant. */
std::uint64_t
feedRange(ServiceLoop &loop, const std::vector<EncodedStream> &streams,
          std::size_t from, std::size_t to)
{
    std::uint64_t pushed = 0;
    std::vector<std::uint8_t> scratch;
    for (std::size_t i = from; i < to; ++i) {
        for (std::uint64_t t = 0; t < streams.size(); ++t)
            if (pushFrame(loop,
                          static_cast<unsigned>(
                              t % loop.numPartitions()),
                          scratch, streams[t][i], t, i))
                ++pushed;
        loop.runCycle();
    }
    drainToCompletion(loop);
    return pushed;
}

/** Applies one bundle-damage shape to a pristine copy. */
void
damageBundle(const std::string &bundle, std::size_t variant)
{
    namespace fs = std::filesystem;
    const std::string manifest =
        bundle + "/" + std::string(kMigrationManifest);
    auto rewrite = [](const std::string &path, std::size_t keep,
                      int flip_at) {
        std::ifstream in(path, std::ios::binary);
        std::vector<char> bytes{std::istreambuf_iterator<char>(in),
                                std::istreambuf_iterator<char>()};
        in.close();
        if (keep < bytes.size())
            bytes.resize(keep);
        if (flip_at >= 0 &&
            static_cast<std::size_t>(flip_at) < bytes.size())
            bytes[static_cast<std::size_t>(flip_at)] ^= 0x20;
        std::ofstream out(path,
                          std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    };
    switch (variant) {
    case 0: rewrite(manifest, 0, -1); break;           // empty
    case 1: rewrite(manifest, 7, -1); break;           // torn header
    case 2: rewrite(manifest, ~std::size_t{0}, 9); break; // bit flip
    case 3: fs::remove(manifest); break;               // no commit
    case 4: // truncated tenant checkpoint
        rewrite(bundle + "/" + tenantCheckpointFile(1), 10, -1);
        break;
    case 5: // bit-flipped tenant checkpoint
        rewrite(bundle + "/" + tenantCheckpointFile(2),
                ~std::size_t{0}, 40);
        break;
    default: // missing tenant checkpoint
        fs::remove(bundle + "/" + tenantCheckpointFile(3));
        break;
    }
}

/** Migration round-trip identity plus the damaged-bundle campaign. */
std::vector<Metric>
runMigrationCell()
{
    constexpr std::uint64_t kTenants = 6;
    constexpr std::size_t kPackets = 60;
    constexpr std::size_t kHandoff = 30;
    constexpr std::size_t kDamageVariants = 7;

    ServeOptions opts;
    opts.producers = 2;
    opts.registry.maxResident = kTenants;
    opts.registry.recordPhases = true;
    opts.registry.checkpointDir = scratchDir("mig_src");

    const unsigned dims =
        opts.registry.tracker.classifier.numCounters;
    std::vector<EncodedStream> streams;
    for (std::uint64_t t = 0; t < kTenants; ++t)
        streams.push_back(
            encodeSyntheticStream(700 + t, kPackets, dims));

    ServiceLoop src(opts);
    std::uint64_t pushed = feedRange(src, streams, 0, kHandoff);
    const std::string bundle = scratchDir("mig_bundle");
    src.migrateOut(bundle);

    // Round trip: adopt, replay the tail, compare against batch.
    ServeOptions dopts = opts;
    dopts.registry.checkpointDir = scratchDir("mig_dst");
    ServiceLoop dst(dopts);
    bool identity = dst.migrateIn(bundle) == kTenants;
    pushed += feedRange(dst, streams, kHandoff, kPackets);
    for (std::uint64_t t = 0; t < kTenants; ++t) {
        std::vector<PhaseId> joined = src.phaseStream(t);
        const std::vector<PhaseId> &tail = dst.phaseStream(t);
        joined.insert(joined.end(), tail.begin(), tail.end());
        identity = identity &&
                   joined == batchPhaseStream(streams[t],
                                              opts.registry.tracker);
    }
    const std::uint64_t delivered = src.counters().packets +
                                    dst.counters().packets;

    // Damage campaign: every variant must be rejected with nothing
    // partially applied.
    std::size_t rejected = 0;
    for (std::size_t v = 0; v < kDamageVariants; ++v) {
        const std::string copy =
            scratchDir("mig_dmg_" + std::to_string(v));
        std::filesystem::copy(
            bundle, copy,
            std::filesystem::copy_options::overwrite_existing);
        damageBundle(copy, v);
        ServeOptions vopts = opts;
        vopts.registry.checkpointDir =
            scratchDir("mig_dmg_ckpt_" + std::to_string(v));
        ServiceLoop victim(vopts);
        try {
            victim.migrateIn(copy);
        } catch (const Error &) {
            if (victim.allTenantIds().empty())
                ++rejected;
        }
    }

    return {{"migration", "migration_identity",
             identity ? 1.0 : 0.0},
            {"migration", "migration_damage_rejected",
             static_cast<double>(rejected) /
                 static_cast<double>(kDamageVariants)},
            {"migration", "migration_conservation",
             delivered == pushed ? 1.0 : 0.0}};
}

/** Eviction churn with the serve fault targets armed: torn, flipped,
 * emptied and deleted checkpoints plus frame bit flips, all counted,
 * none fatal, conservation exact. */
std::vector<Metric>
runCheckpointChaosCell()
{
    constexpr std::uint64_t kTenants = 10;
    constexpr std::size_t kCycles = 240;

    ServeOptions opts;
    opts.producers = 1;
    opts.registry.maxResident = 3; // three slots, ten tenants: churn
    opts.registry.checkpointDir = scratchDir("ckpt_chaos");
    ServiceLoop loop(opts);

    // Target::All arms both serve hooks: checkpoint writes may be
    // torn/flipped/emptied/deleted, popped frames may take bit
    // flips. (The tracker-level targets in All are reached only via
    // beforeInterval, which the serve path never calls.)
    fault::InjectorConfig fcfg;
    fcfg.target = fault::Target::All;
    fcfg.ratePerInterval = 0.25;
    fault::Injector ckpt_injector(fcfg, "chaos/ckpt");
    loop.setFaultInjector(0, &ckpt_injector);

    const unsigned dims =
        opts.registry.tracker.classifier.numCounters;
    std::vector<EncodedStream> streams;
    for (std::uint64_t t = 0; t < kTenants; ++t)
        streams.push_back(
            encodeSyntheticStream(900 + t, kCycles, dims));

    std::uint64_t pushed = 0;
    std::vector<std::uint8_t> scratch;
    for (std::size_t cycle = 0; cycle < kCycles; ++cycle) {
        for (std::uint64_t t = 0; t < kTenants; ++t)
            if (pushFrame(loop, 0, scratch, streams[t][cycle], t,
                          cycle))
                ++pushed;
        loop.runCycle();
    }
    drainToCompletion(loop);

    const ServeCounters c = loop.counters();
    const std::uint64_t faults =
        ckpt_injector.counts().serveCheckpointFaults;
    return {{"checkpoint-chaos", "checkpoint_chaos_faults",
             static_cast<double>(faults)},
            {"checkpoint-chaos", "checkpoint_chaos_failures_counted",
             faults == 0 || c.resumeFailures > 0 ? 1.0 : 0.0},
            {"checkpoint-chaos", "checkpoint_chaos_conservation",
             conservation(c, pushed)}};
}

std::map<std::string, double>
loadFloors(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        tpcp_raise("cannot read floors file ", path);
    std::map<std::string, double> floors;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string metric;
        double value = 0.0;
        if (!(ls >> metric >> value))
            tpcp_raise("floors file ", path, ": malformed line '",
                       line, "' (want: metric min_value)");
        floors[metric] = value;
    }
    return floors;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseArgs(
        argc, argv,
        {{"cycles", true,
          "push cycles for the fairness cell (default 400)"},
         {"floors", true,
          "floor file (metric min_value per line); exit 1 on "
          "violation"},
         {"json", true,
          "write metrics as JSON (default chaos_sweep.json; "
          "'-' disables)"}});

    int rc = 0;
    try {
        const std::size_t cycles = args.getU64("cycles", 400);
        const std::string json_path =
            args.get("json", "chaos_sweep.json");

        bench::banner("Chaos sweep",
                      "overload fairness, quarantine, migration and "
                      "checkpoint-damage resilience");

        double base_jain = 0.0, res_jain = 0.0;
        auto cells = analysis::runIndexed(
            6, args.jobs,
            [&](std::size_t i) -> std::vector<Metric> {
                switch (i) {
                case 0:
                    return runFairnessCell(cycles, false, base_jain);
                case 1:
                    return runFairnessCell(cycles, true, res_jain);
                case 2: return runOverloadCell(cycles / 2);
                case 3: return runQuarantineCell();
                case 4: return runMigrationCell();
                default: return runCheckpointChaosCell();
                }
            });

        std::vector<Metric> metrics;
        for (const auto &cell : cells)
            metrics.insert(metrics.end(), cell.begin(), cell.end());

        AsciiTable table({"cell", "metric", "value"});
        for (const Metric &m : metrics) {
            std::ostringstream v;
            v << m.value;
            table.row().cell(m.cell).cell(m.name).cell(v.str());
        }
        table.print(std::cout);
        std::cout << "\nfairness: baseline jain " << base_jain
                  << " -> resilient jain " << res_jain << "\n";

        if (json_path != "-") {
            std::ofstream out(json_path);
            if (!out)
                tpcp_raise("cannot write ", json_path);
            out << "[\n";
            for (std::size_t i = 0; i < metrics.size(); ++i)
                out << "  {\"cell\": \"" << metrics[i].cell
                    << "\", \"metric\": \"" << metrics[i].name
                    << "\", \"value\": " << metrics[i].value << "}"
                    << (i + 1 < metrics.size() ? "," : "") << "\n";
            out << "]\n";
            if (!out.flush())
                tpcp_raise("cannot write ", json_path);
            std::cout << "wrote " << metrics.size()
                      << " metrics to " << json_path << "\n";
        }

        if (args.has("floors")) {
            std::map<std::string, double> floors =
                loadFloors(args.get("floors", ""));
            std::map<std::string, double> byName;
            for (const Metric &m : metrics)
                byName[m.name] = m.value;
            unsigned violations = 0;
            for (const auto &[metric, floor] : floors) {
                auto it = byName.find(metric);
                if (it == byName.end())
                    tpcp_raise("floors file names unknown metric '",
                               metric, "'");
                if (it->second < floor) {
                    std::cerr << "error: " << metric << " "
                              << it->second << " below floor "
                              << floor << "\n";
                    ++violations;
                }
            }
            if (violations != 0) {
                std::cerr << "error: " << violations
                          << " floor violation(s)\n";
                rc = 1;
            } else {
                std::cout << "all " << floors.size()
                          << " floored metrics hold\n";
            }
        }
    } catch (const Error &e) {
        std::cerr << "error: " << e.what() << "\n";
        rc = 1;
    }
    return rc;
}
