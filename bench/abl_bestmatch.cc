/**
 * @file
 * Ablation (paper section 4.1, classification step): first-match vs
 * best-match selection when multiple table signatures satisfy the
 * similarity threshold. The paper states that choosing the most
 * similar signature improves phase homogeneity; this harness
 * quantifies that claim on our workloads.
 */

#include <iostream>

#include "analysis/experiment.hh"
#include "bench_common.hh"
#include "common/ascii_table.hh"

using namespace tpcp;

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseArgs(
        argc, argv, {bench::traceFlag()});
    bench::banner("Ablation", "First-match vs best-match selection");
    auto profiles = bench::loadAllProfiles(args);

    phase::ClassifierConfig cfg;
    cfg.numCounters = 16;
    cfg.tableEntries = 32;
    cfg.similarityThreshold = 0.25;
    cfg.minCountThreshold = 8;
    cfg.matchPolicy = phase::MatchPolicy::FirstMatch;
    phase::ClassifierConfig best_cfg = cfg;
    best_cfg.matchPolicy = phase::MatchPolicy::BestMatch;
    auto results =
        analysis::runGrid(profiles, {cfg, best_cfg}, args.jobs);

    AsciiTable table({"workload", "first CoV", "best CoV",
                      "first phases", "best phases"});
    std::vector<double> first_cov, best_cov;
    for (std::size_t w = 0; w < profiles.size(); ++w) {
        const analysis::ClassificationResult &first =
            results[w * 2];
        const analysis::ClassificationResult &best =
            results[w * 2 + 1];

        table.row()
            .cell(profiles[w].first)
            .percentCell(first.covCpi)
            .percentCell(best.covCpi)
            .cell(static_cast<std::uint64_t>(first.numPhases))
            .cell(static_cast<std::uint64_t>(best.numPhases));
        first_cov.push_back(first.covCpi);
        best_cov.push_back(best.covCpi);
    }
    table.row()
        .cell("avg")
        .percentCell(bench::mean(first_cov))
        .percentCell(bench::mean(best_cov))
        .cell("")
        .cell("");
    table.print(std::cout);
    std::cout << "\nClaim check (section 4.1): best-match CoV <= "
                 "first-match CoV on average.\n";
    return 0;
}
