/**
 * @file
 * Figure 5: average stable and transition phase lengths (in
 * intervals), with standard deviations, under the 25%-similarity /
 * min-count-8 classifier.
 *
 * Expected shape (paper): stable runs are much longer than transition
 * runs for all programs except gcc; gzip/graphic and perl/diffmail
 * have exceptionally long average stable runs.
 */

#include <iostream>

#include "analysis/experiment.hh"
#include "bench_common.hh"
#include "common/ascii_table.hh"

using namespace tpcp;

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseArgs(
        argc, argv, {bench::traceFlag()});
    bench::banner("Figure 5",
                  "Average stable and transition phase lengths");
    auto profiles = bench::loadAllProfiles(args);

    phase::ClassifierConfig cfg;
    cfg.numCounters = 16;
    cfg.tableEntries = 32;
    cfg.similarityThreshold = 0.25;
    cfg.minCountThreshold = 8;
    auto results = analysis::runGrid(profiles, {cfg}, args.jobs);

    AsciiTable table({"workload", "stable avg", "stable stddev",
                      "stable runs", "trans avg", "trans stddev",
                      "trans runs"});
    std::vector<double> stable_avgs, trans_avgs;
    for (std::size_t w = 0; w < profiles.size(); ++w) {
        const analysis::ClassificationResult &res = results[w];
        const analysis::RunLengthSummary &rl = res.runLengths;
        table.row()
            .cell(profiles[w].first)
            .cell(rl.stableAvg, 1)
            .cell(rl.stableStddev, 1)
            .cell(rl.stableRuns)
            .cell(rl.transitionAvg, 1)
            .cell(rl.transitionStddev, 1)
            .cell(rl.transitionRuns);
        stable_avgs.push_back(rl.stableAvg);
        trans_avgs.push_back(rl.transitionAvg);
    }
    table.row()
        .cell("avg")
        .cell(bench::mean(stable_avgs), 1)
        .cell("")
        .cell("")
        .cell(bench::mean(trans_avgs), 1)
        .cell("")
        .cell("");
    table.print(std::cout);
    std::cout << "\nPaper shape check: stable runs longer and more "
                 "variable than transition\nruns everywhere except "
                 "gcc; gzip/g and perl/d have exceptionally long\n"
                 "stable runs.\n";
    return 0;
}
