/**
 * @file
 * Online vs offline classification (paper sections 4.4 and 7): the
 * paper argues its online classifier's CPI CoV and phase counts are
 * "comparable to the results of the offline phase classification
 * algorithm used in SimPoint". This harness checks that claim
 * directly against our SimPoint-style k-means comparator.
 *
 * Note the offline algorithm sees all intervals at once (and is not
 * implementable in hardware); the online classifier sees each
 * interval once with 32 entries of state. Comparable quality is the
 * headline result.
 */

#include <iostream>

#include "analysis/cov.hh"
#include "analysis/experiment.hh"
#include "analysis/offline_kmeans.hh"
#include "bench_common.hh"
#include "common/ascii_table.hh"

using namespace tpcp;

namespace
{

/** Everything one table row needs; computed per workload cell. */
struct OfflineRow
{
    analysis::ClassificationResult onlineStatic;
    analysis::ClassificationResult online;
    double offCov = 0.0;
    unsigned offK = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseArgs(
        argc, argv, {bench::traceFlag()});
    bench::banner("Online vs offline (SimPoint-style) classification",
                  "CPI CoV and phase counts");
    auto profiles = bench::loadAllProfiles(args);

    auto rows = analysis::runIndexed(
        profiles.size(), args.jobs, [&](std::size_t w) {
            const trace::IntervalProfile &profile =
                profiles[w].second;
            OfflineRow row;
            // The configuration the paper compares against SimPoint
            // (section 4.4): static 25% threshold, min count 8.
            phase::ClassifierConfig static_cfg;
            static_cfg.numCounters = 16;
            static_cfg.tableEntries = 32;
            static_cfg.similarityThreshold = 0.25;
            static_cfg.minCountThreshold = 8;
            row.onlineStatic =
                analysis::classifyProfile(profile, static_cfg);
            row.online = analysis::classifyProfile(
                profile, phase::ClassifierConfig::paperDefault());

            analysis::OfflineConfig ocfg;
            ocfg.maxK = 40;
            ocfg.explainedVariance = 0.98;
            analysis::OfflineResult offline =
                analysis::classifyOffline(profile, ocfg);
            // Offline cluster IDs start at 0; shift by 1 so no
            // cluster collides with the transition-phase ID in the
            // CoV metric.
            std::vector<PhaseId> ids;
            ids.reserve(offline.assignments.size());
            for (auto a : offline.assignments)
                ids.push_back(a + 1);
            row.offCov =
                analysis::weightedPhaseCov(ids, profile.cpis());
            row.offK = offline.k;
            return row;
        });

    AsciiTable table({"workload", "online 25% CoV",
                      "online adaptive CoV", "offline CoV",
                      "online phases", "offline k"});
    std::vector<double> on_static_cov, on_cov, off_cov;
    for (std::size_t w = 0; w < profiles.size(); ++w) {
        const analysis::ClassificationResult &online_static =
            rows[w].onlineStatic;
        const analysis::ClassificationResult &online =
            rows[w].online;
        double off = rows[w].offCov;

        table.row()
            .cell(profiles[w].first)
            .percentCell(online_static.covCpi)
            .percentCell(online.covCpi)
            .percentCell(off)
            .cell(static_cast<std::uint64_t>(online.numPhases))
            .cell(static_cast<std::uint64_t>(rows[w].offK));
        on_static_cov.push_back(online_static.covCpi);
        on_cov.push_back(online.covCpi);
        off_cov.push_back(off);
    }
    table.row()
        .cell("avg")
        .percentCell(bench::mean(on_static_cov))
        .percentCell(bench::mean(on_cov))
        .percentCell(bench::mean(off_cov))
        .cell("")
        .cell("");
    table.print(std::cout);
    std::cout << "\nPaper claim (4.4/7): the online 25% classifier's "
                 "quality is comparable to\nthe offline SimPoint-"
                 "style clustering, despite 32 entries of state and "
                 "one\npass. The adaptive column shows this paper's "
                 "CPI-feedback splitting going\nbeyond what offline "
                 "code-signature clustering can see.\n";
    return 0;
}
