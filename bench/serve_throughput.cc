/**
 * @file
 * End-to-end throughput harness for the streaming multi-tenant
 * phase service: sweeps the tenant count (1 up to --tenants,
 * default 1024) at a fixed packet budget per tenant, running real
 * producer threads against the real service loop, and reports the
 * aggregate ingest rate at each point.
 *
 * Every sweep point enforces the service's conservation invariant —
 * packets pushed == delivered + malformed + rejected — so a
 * throughput number can never be bought with silent packet loss;
 * any mismatch fails the run. `--min-rate=R` turns the largest
 * sweep point into a CI tripwire.
 *
 * Options:
 *   --tenants=N    largest sweep point        (default 1024)
 *   --packets=N    packets per tenant stream  (default 200)
 *   --producers=P  producer rings/threads     (default 2)
 *   --streams=K    distinct synthetic streams (default 4)
 *   --min-rate=R   fail if the largest point delivers fewer than R
 *                  packets/s
 *   --json=PATH    write the sweep as JSON
 *   --trace=F,...  encode tenant streams from .tpcptrace files
 *                  instead of the synthetic stream generator
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "common/ascii_table.hh"
#include "serve/service.hh"

using namespace tpcp;

namespace
{

struct SweepPoint
{
    unsigned tenants = 0;
    std::uint64_t produced = 0;
    std::uint64_t delivered = 0;
    std::uint64_t parkEvents = 0;
    std::uint64_t evictions = 0;
    double elapsedSec = 0.0;
    double packetsPerSec = 0.0;
};

SweepPoint
runPoint(unsigned tenants, unsigned producers,
         std::uint64_t packets,
         const std::vector<serve::EncodedStream> &streams,
         const pred::PhaseTrackerConfig &tcfg)
{
    serve::ServeOptions opts;
    opts.registry.tracker = tcfg;
    opts.registry.maxResident =
        std::max(1u, (tenants + producers - 1) / producers);
    opts.producers = producers;
    serve::ServiceLoop loop(opts);

    std::vector<serve::ProducerTask> tasks(producers);
    for (unsigned p = 0; p < producers; ++p) {
        tasks[p].ring = &loop.ring(p);
        tasks[p].policy = serve::BackpressurePolicy::Park;
    }
    for (std::uint64_t t = 0; t < tenants; ++t) {
        serve::ProducerTask &task = tasks[t % producers];
        task.tenants.push_back(t);
        task.streams.push_back(&streams[t % streams.size()]);
    }

    std::vector<serve::ProducerCounters> pcs(producers);
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(producers);
    for (unsigned p = 0; p < producers; ++p)
        threads.emplace_back([&, p] {
            pcs[p] = serve::runProducer(tasks[p]);
            loop.producerDone(p);
        });
    loop.run();
    for (std::thread &th : threads)
        th.join();
    const double sec = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();

    SweepPoint pt;
    pt.tenants = tenants;
    for (const serve::ProducerCounters &c : pcs) {
        pt.produced += c.pushed;
        pt.parkEvents += c.parkEvents;
        if (c.dropped != 0) {
            std::cerr << "error: Park producers must not drop\n";
            std::exit(1);
        }
    }
    const serve::ServeCounters sc = loop.counters();
    pt.delivered = sc.packets;
    pt.evictions = sc.evictions;
    pt.elapsedSec = sec;
    pt.packetsPerSec =
        sec > 0.0 ? static_cast<double>(sc.packets) / sec : 0.0;

    const std::uint64_t expected =
        std::uint64_t{tenants} * packets;
    const std::uint64_t accounted =
        sc.packets + sc.malformedPackets + sc.rejectedPackets;
    if (pt.produced != expected || accounted != pt.produced ||
        sc.malformedPackets != 0 || sc.rejectedPackets != 0 ||
        sc.lostUpstream != 0) {
        std::cerr << "error: packet conservation violated at "
                  << tenants << " tenants: expected " << expected
                  << ", produced " << pt.produced
                  << ", accounted " << accounted << " (malformed "
                  << sc.malformedPackets << ", rejected "
                  << sc.rejectedPackets << ", lost "
                  << sc.lostUpstream << ")\n";
        std::exit(1);
    }
    return pt;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseArgs(
        argc, argv,
        {{"tenants", true, "largest sweep point (default 1024)"},
         {"packets", true,
          "packets per tenant stream (default 200)"},
         {"producers", true,
          "producer rings/threads (default 2)"},
         {"streams", true,
          "distinct synthetic streams (default 4)"},
         {"min-rate", true,
          "fail if the largest point delivers fewer packets/s"},
         {"json", true, "write the sweep as JSON"},
         bench::traceFlag()});

    const unsigned max_tenants =
        static_cast<unsigned>(args.getU64("tenants", 1024));
    std::uint64_t packets = args.getU64("packets", 200);
    const unsigned producers =
        static_cast<unsigned>(args.getU64("producers", 2));
    const unsigned num_streams =
        static_cast<unsigned>(args.getU64("streams", 4));

    pred::PhaseTrackerConfig tcfg;
    std::vector<serve::EncodedStream> streams;
    if (args.has("trace")) {
        // Tenant streams encoded from ingested traces. Every stream
        // is cut to a common length so the conservation invariant
        // (expected == tenants x packets) stays exact.
        auto traced =
            trace::loadTraceProfiles(args.get("trace", ""));
        for (const auto &[name, profile] : traced)
            packets = std::min<std::uint64_t>(
                packets, profile.numIntervals());
        for (const auto &[name, profile] : traced) {
            streams.push_back(serve::encodeProfileStream(
                profile, tcfg.classifier.numCounters, packets));
            std::cerr << "[trace] " << name << ": "
                      << streams.back().size() << " packets\n";
        }
    } else {
        streams.reserve(num_streams);
        for (unsigned k = 0; k < num_streams; ++k)
            streams.push_back(serve::encodeSyntheticStream(
                k, packets, tcfg.classifier.numCounters));
    }

    std::vector<unsigned> sweep;
    for (unsigned t = 1; t < max_tenants; t *= 4)
        sweep.push_back(t);
    sweep.push_back(max_tenants);

    std::vector<SweepPoint> points;
    AsciiTable table({"tenants", "producers", "packets", "parks",
                      "evictions", "sec", "packets/s"});
    for (unsigned t : sweep) {
        SweepPoint pt =
            runPoint(t, producers, packets, streams, tcfg);
        points.push_back(pt);
        table.row()
            .cell(std::uint64_t{pt.tenants})
            .cell(std::uint64_t{producers})
            .cell(pt.delivered)
            .cell(pt.parkEvents)
            .cell(pt.evictions)
            .cell(pt.elapsedSec, 3)
            .cell(pt.packetsPerSec, 0);
    }
    table.print(std::cout);

    std::string json = args.get("json", "");
    if (!json.empty() && json != "-") {
        std::ofstream out(json);
        if (!out) {
            std::cerr << "error: cannot write " << json << "\n";
            return 1;
        }
        out << "[\n";
        for (std::size_t i = 0; i < points.size(); ++i) {
            const SweepPoint &pt = points[i];
            out << "  {\"tenants\": " << pt.tenants
                << ", \"producers\": " << producers
                << ", \"packets\": " << pt.delivered
                << ", \"park_events\": " << pt.parkEvents
                << ", \"evictions\": " << pt.evictions
                << ", \"elapsed_sec\": " << pt.elapsedSec
                << ", \"packets_per_sec\": " << pt.packetsPerSec
                << (i + 1 < points.size() ? "},\n" : "}\n");
        }
        out << "]\n";
        std::cout << "wrote " << points.size() << " points to "
                  << json << "\n";
    }

    if (args.has("min-rate")) {
        const double limit = args.getDouble("min-rate", 0.0);
        const double rate = points.back().packetsPerSec;
        if (rate < limit) {
            std::cerr << "error: " << points.back().tenants
                      << "-tenant ingest " << rate
                      << " packets/s below --min-rate " << limit
                      << "\n";
            return 1;
        }
        std::cout << points.back().tenants << "-tenant ingest "
                  << rate << " packets/s meets --min-rate " << limit
                  << "\n";
    }
    return 0;
}
