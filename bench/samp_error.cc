/**
 * @file
 * Sampled-simulation error sweep: budget x selector x workload.
 *
 * The payoff experiment for phase classification (SimPoint, ASPLOS
 * 2002; Ekman's two-phase stratified sampling): how close does a
 * whole-program CPI estimate get when only a handful of intervals
 * are detailed-simulated, and how much does picking those intervals
 * *by phase* beat picking them blindly? Phase-guided selectors
 * (first / centroid / stratified) should reach a few percent error
 * while simulating well under 10% of intervals, beating the
 * phase-blind uniform/random baselines at equal budget.
 *
 * Every report is also serialized to JSON (--json) so sweeps leave
 * a machine-readable trajectory.
 */

#include <algorithm>
#include <iostream>
#include <map>

#include "bench_common.hh"
#include "common/ascii_table.hh"
#include "sample/report.hh"
#include "sample/selector.hh"

using namespace tpcp;

namespace
{

/** Parses a comma-separated list of positive budgets. */
std::vector<std::size_t>
parseBudgets(const std::string &csv)
{
    std::vector<std::size_t> budgets;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        std::size_t comma = csv.find(',', pos);
        if (comma == std::string::npos)
            comma = csv.size();
        std::string tok = csv.substr(pos, comma - pos);
        char *end = nullptr;
        unsigned long v = std::strtoul(tok.c_str(), &end, 10);
        if (tok.empty() || *end != '\0' || v == 0) {
            std::cerr << "error: --budgets expects positive "
                         "integers, got '" << tok << "'\n";
            std::exit(2);
        }
        budgets.push_back(static_cast<std::size_t>(v));
        pos = comma + 1;
    }
    return budgets;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseArgs(
        argc, argv,
        {{"budgets", true,
          "comma-separated sample budgets (default 8,16,32,64)"},
         {"phase-source", true,
          "phase stream: online | offline (default online)"},
         {"json", true,
          "write SampleReport JSON (default samp_error.json; "
          "'-' disables)"},
         bench::traceFlag()});
    std::vector<std::size_t> budgets =
        parseBudgets(args.get("budgets", "8,16,32,64"));
    sample::PhaseSource source = sample::phaseSourceByName(
        args.get("phase-source", "online"));
    std::string json_path = args.get("json", "samp_error.json");

    bench::banner("Sampled simulation error",
                  "whole-program CPI from a handful of detailed "
                  "intervals");
    auto profiles = bench::loadAllProfiles(args);
    const std::vector<std::string> &selectors =
        sample::selectorNames();

    // One parallel cell per workload: classify once, then sweep
    // selector x budget serially inside the cell.
    auto per_workload = analysis::runIndexed(
        profiles.size(), args.jobs, [&](std::size_t w) {
            const trace::IntervalProfile &profile =
                profiles[w].second;
            std::vector<PhaseId> phases =
                sample::phaseIdStream(profile, source);
            std::vector<sample::SampleReport> reports;
            for (std::size_t budget : budgets)
                for (const std::string &sel : selectors)
                    reports.push_back(
                        sample::runSampledSimulation(
                            profile, phases, sel, source, budget));
            return reports;
        });

    std::vector<sample::SampleReport> all;
    for (const auto &reports : per_workload)
        all.insert(all.end(), reports.begin(), reports.end());

    // Per-budget tables: CPI error per selector per workload.
    std::map<std::pair<std::string, std::size_t>,
             std::vector<double>> errors;
    for (std::size_t b = 0; b < budgets.size(); ++b) {
        std::vector<std::string> headers = {"workload", "sampled"};
        for (const std::string &sel : selectors)
            headers.push_back(sel + " err");
        AsciiTable table(std::move(headers));
        for (std::size_t w = 0; w < profiles.size(); ++w) {
            const sample::SampleReport &ref =
                per_workload[w][b * selectors.size()];
            auto row = &table.row()
                            .cell(profiles[w].first)
                            .percentCell(ref.sampledFraction());
            for (std::size_t s = 0; s < selectors.size(); ++s) {
                const sample::SampleReport &r =
                    per_workload[w][b * selectors.size() + s];
                row->percentCell(r.relError);
                errors[{selectors[s], budgets[b]}].push_back(
                    r.relError);
            }
        }
        std::cout << "Budget " << budgets[b]
                  << " detailed intervals per workload ("
                  << phaseSourceName(source) << " phases):\n";
        table.print(std::cout);
        std::cout << "\n";
    }

    // Summary: average and worst error per (selector, budget).
    AsciiTable summary(
        {"selector", "budget", "avg err", "max err"});
    for (const std::string &sel : selectors) {
        for (std::size_t budget : budgets) {
            const std::vector<double> &errs =
                errors.at({sel, budget});
            summary.row()
                .cell(sel)
                .cell(static_cast<std::uint64_t>(budget))
                .percentCell(bench::mean(errs))
                .percentCell(*std::max_element(errs.begin(),
                                               errs.end()));
        }
    }
    summary.print(std::cout);

    // Acceptance check: at the largest budget, how many workloads
    // does each phase-guided selector estimate within 5% while
    // simulating <= 10% of intervals, and does it beat the random
    // baseline at equal budget?
    std::size_t top = budgets.back();
    std::cout << "\nAt budget " << top << ":\n";
    for (const std::string &sel : selectors) {
        if (sel == "uniform" || sel == "random")
            continue;
        unsigned hit = 0, beats = 0, eligible = 0;
        for (std::size_t w = 0; w < profiles.size(); ++w) {
            const auto &reports = per_workload[w];
            const sample::SampleReport *chosen = nullptr,
                                       *random = nullptr;
            for (const auto &r : reports) {
                if (r.budget != top)
                    continue;
                if (r.selector == sel)
                    chosen = &r;
                if (r.selector == "random")
                    random = &r;
            }
            if (chosen->sampledFraction() <= 0.10) {
                ++eligible;
                if (chosen->relError <= 0.05)
                    ++hit;
                if (chosen->relError <= random->relError)
                    ++beats;
            }
        }
        std::cout << "  " << sel << ": " << hit << "/" << eligible
                  << " workloads within 5% CPI error at <= 10% "
                     "intervals; beats random on " << beats << "/"
                  << eligible << "\n";
    }

    if (json_path != "-") {
        if (!sample::writeJson(json_path, all)) {
            std::cerr << "error: cannot write " << json_path
                      << "\n";
            return 1;
        }
        std::cerr << "[samp_error] wrote " << all.size()
                  << " reports to " << json_path << "\n";
    }
    return 0;
}
