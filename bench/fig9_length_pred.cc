/**
 * @file
 * Figure 9: phase-length prediction. Left: the distribution of phase
 * run lengths over the four classes (1-15, 16-127, 128-1023, >= 1024
 * intervals). Right: the misprediction rate of the 32-entry 4-way
 * RLE-2 run-length-class predictor with hysteresis.
 *
 * Expected shape (paper): most programs have >= 90% of their runs in
 * the shortest class; gzip and perl transition into long phases
 * often; misprediction rates are low (a few percent).
 */

#include <iostream>

#include "analysis/experiment.hh"
#include "bench_common.hh"
#include "common/ascii_table.hh"
#include "phase/phase_trace.hh"
#include "pred/eval.hh"

using namespace tpcp;

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseArgs(
        argc, argv, {bench::traceFlag()});
    bench::banner("Figure 9",
                  "Run-length classes and phase length prediction");
    auto profiles = bench::loadAllProfiles(args);

    phase::ClassifierConfig ccfg =
        phase::ClassifierConfig::paperDefault();
    auto results = analysis::runGrid(profiles, {ccfg}, args.jobs);

    AsciiTable dist({"workload", "1-15", "16-127", "128-1023",
                     "1024-", "runs"});
    AsciiTable mispred({"workload", "mispredict rate", "predictions"});
    std::vector<double> miss_rates;

    for (std::size_t w = 0; w < profiles.size(); ++w) {
        const std::string &name = profiles[w].first;
        const analysis::ClassificationResult &res = results[w];
        pred::RunLengthStats stats =
            pred::evalRunLength(res.trace.phases);

        dist.row().cell(name);
        for (unsigned cls = 0; cls < phase::numRunLengthClasses;
             ++cls)
            dist.percentCell(stats.classFraction(cls));
        dist.cell(stats.totalRuns);

        mispred.row()
            .cell(name)
            .percentCell(stats.mispredictRate())
            .cell(stats.predictions);
        miss_rates.push_back(stats.mispredictRate());
    }
    mispred.row().cell("avg").percentCell(bench::mean(miss_rates))
        .cell("");

    std::cout << "Percentage of runs per run-length class (all "
                 "phases, including transition):\n";
    dist.print(std::cout);
    std::cout << "\nRLE-2 run-length-class misprediction rate "
                 "(hysteresis, no confidence):\n";
    mispred.print(std::cout);
    std::cout << "\nPaper shape check: the 1-15 class dominates for "
                 "most programs; gzip/g\nand perl/d transition into "
                 "long runs; misprediction rates stay in the\nlow "
                 "single digits.\n";
    return 0;
}
