/**
 * @file
 * Shared plumbing for the figure-reproduction harnesses: loads (or
 * builds and caches) the interval profiles of all 11 workloads and
 * provides small aggregation helpers. Every fig*_ binary prints the
 * rows/series of one paper figure.
 */

#ifndef TPCP_BENCH_BENCH_COMMON_HH
#define TPCP_BENCH_BENCH_COMMON_HH

#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "trace/profile_cache.hh"
#include "workload/workload.hh"

namespace tpcp::bench
{

/** (workload name, profile) for every benchmark, in paper order. */
inline std::vector<std::pair<std::string, trace::IntervalProfile>>
loadAllProfiles(const trace::ProfileOptions &opts = {})
{
    std::vector<std::pair<std::string, trace::IntervalProfile>> out;
    for (const std::string &name : workload::workloadNames()) {
        std::cerr << "[profile] " << name << " ... " << std::flush;
        out.emplace_back(name, trace::getProfileByName(name, opts));
        std::cerr << out.back().second.numIntervals()
                  << " intervals\n";
    }
    return out;
}

/** Arithmetic mean of a vector (0 when empty). */
inline double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += x;
    return s / static_cast<double>(v.size());
}

/** Prints the standard harness banner. */
inline void
banner(const std::string &figure, const std::string &what)
{
    std::cout
        << "=====================================================\n"
        << figure << ": " << what << "\n"
        << "(Lau, Schoenmackers, Calder - Transition Phase\n"
        << " Classification and Prediction, HPCA 2005)\n"
        << "=====================================================\n\n";
}

} // namespace tpcp::bench

#endif // TPCP_BENCH_BENCH_COMMON_HH
