/**
 * @file
 * Shared plumbing for the figure-reproduction harnesses: loads (or
 * builds and caches) the interval profiles of all 11 workloads and
 * provides small aggregation helpers. Every fig*_ binary prints the
 * rows/series of one paper figure.
 *
 * All harnesses accept `--jobs=N` (or `--jobs N`): profile loading
 * and the experiment grid fan out over N threads (0 or omitted = one
 * per hardware thread, 1 = the plain serial loop). Output is
 * bit-identical for every job count — results come back in grid
 * order and each cell is a pure function of its inputs.
 */

#ifndef TPCP_BENCH_BENCH_COMMON_HH
#define TPCP_BENCH_BENCH_COMMON_HH

#include <cstdlib>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/parallel_runner.hh"
#include "trace/profile_cache.hh"
#include "trace/trace_workload.hh"
#include "workload/workload.hh"

namespace tpcp::bench
{

/** An extra flag a harness accepts beyond the shared --jobs. */
struct FlagSpec
{
    /** Flag name without the leading "--". */
    std::string name;
    /** Whether the flag consumes a value (--name=V or --name V). */
    bool takesValue = true;
    /** One-line description shown by --help and on errors. */
    std::string help;
};

/** Command-line options shared by every harness. */
struct BenchArgs
{
    /** Worker threads: 0 = one per hardware thread, 1 = serial. */
    unsigned jobs = 0;
    /** Values of the harness-specific flags, keyed by flag name
     * (value-less flags map to ""). */
    std::map<std::string, std::string> extra;

    bool has(const std::string &name) const
    {
        return extra.count(name) != 0;
    }

    std::string
    get(const std::string &name, const std::string &dflt) const
    {
        auto it = extra.find(name);
        return it == extra.end() ? dflt : it->second;
    }

    std::uint64_t
    getU64(const std::string &name, std::uint64_t dflt) const
    {
        auto it = extra.find(name);
        return it == extra.end()
                   ? dflt
                   : std::strtoull(it->second.c_str(), nullptr, 10);
    }

    double
    getDouble(const std::string &name, double dflt) const
    {
        auto it = extra.find(name);
        return it == extra.end()
                   ? dflt
                   : std::strtod(it->second.c_str(), nullptr);
    }
};

/** The valid-options listing printed by --help and on errors. */
inline std::string
optionHelp(const std::vector<FlagSpec> &extras)
{
    std::string out =
        "  --jobs=N  worker threads (0 = one per hardware thread, "
        "1 = serial)\n";
    for (const FlagSpec &f : extras) {
        out += "  --" + f.name + (f.takesValue ? "=V" : "") + "  " +
               f.help + "\n";
    }
    return out;
}

/**
 * Parses harness arguments: the shared --jobs plus any
 * harness-specific @p extras, in --flag=value or --flag value form.
 * Returns std::nullopt with an error message in @p error for
 * unknown or malformed flags — a typo like --job=4 must fail
 * loudly, not silently run the full serial sweep.
 */
inline std::optional<BenchArgs>
tryParseArgs(const std::vector<std::string> &argv,
             const std::vector<FlagSpec> &extras,
             std::string &error)
{
    BenchArgs args;
    for (std::size_t i = 0; i < argv.size(); ++i) {
        const std::string &arg = argv[i];
        std::string key = arg, value;
        bool has_value = false;
        if (auto eq = arg.find('='); eq != std::string::npos) {
            key = arg.substr(0, eq);
            value = arg.substr(eq + 1);
            has_value = true;
        }

        const FlagSpec *spec = nullptr;
        static const FlagSpec jobs_spec{"jobs", true, ""};
        if (key == "--jobs") {
            spec = &jobs_spec;
        } else {
            for (const FlagSpec &f : extras)
                if (key == "--" + f.name)
                    spec = &f;
        }
        if (!spec) {
            error = "unknown argument '" + arg +
                    "'\nvalid options:\n" + optionHelp(extras);
            return std::nullopt;
        }
        if (spec->takesValue && !has_value) {
            if (i + 1 >= argv.size()) {
                error = "--" + spec->name + " expects a value\n" +
                        "valid options:\n" + optionHelp(extras);
                return std::nullopt;
            }
            value = argv[++i];
        } else if (!spec->takesValue && has_value) {
            error = "--" + spec->name + " takes no value\n" +
                    "valid options:\n" + optionHelp(extras);
            return std::nullopt;
        }

        if (spec->name == "jobs") {
            char *end = nullptr;
            unsigned long n =
                std::strtoul(value.c_str(), &end, 10);
            if (value.empty() || *end != '\0') {
                error = "--jobs expects a non-negative integer, "
                        "got '" + value + "'";
                return std::nullopt;
            }
            args.jobs = static_cast<unsigned>(n);
        } else {
            args.extra[spec->name] = value;
        }
    }
    return args;
}

/**
 * Parses harness arguments (--jobs / extras / --help); prints the
 * valid options and exits on errors, so every harness rejects
 * unknown flags the same way.
 */
inline BenchArgs
parseArgs(int argc, char **argv,
          const std::vector<FlagSpec> &extras = {})
{
    std::vector<std::string> in;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::cout << "usage: " << argv[0] << " [options]\n"
                      << optionHelp(extras);
            std::exit(0);
        }
        in.push_back(std::move(arg));
    }
    std::string error;
    std::optional<BenchArgs> args =
        tryParseArgs(in, extras, error);
    if (!args) {
        std::cerr << "error: " << error << "\n";
        std::exit(2);
    }
    return *args;
}

/** The shared `--trace=` flag: every profile-replaying harness
 * accepts ingested `.tpcptrace` files in place of the synthetic
 * workload set. */
inline FlagSpec
traceFlag()
{
    return {"trace", true,
            "comma-separated .tpcptrace files to analyze instead "
            "of the 11 synthetic workloads"};
}

/** Splits @p csv on commas, skipping empty fields. */
inline std::vector<std::string>
splitCsv(const std::string &csv)
{
    std::vector<std::string> out;
    std::string field;
    for (char ch : csv) {
        if (ch == ',') {
            if (!field.empty())
                out.push_back(std::move(field));
            field.clear();
        } else {
            field += ch;
        }
    }
    if (!field.empty())
        out.push_back(std::move(field));
    return out;
}

/**
 * (workload name, profile) for every benchmark, in paper order.
 * Profiles are loaded (or simulated and cached) on @p jobs threads;
 * the result order never depends on the job count.
 */
inline std::vector<std::pair<std::string, trace::IntervalProfile>>
loadAllProfiles(const trace::ProfileOptions &opts = {},
                unsigned jobs = 1)
{
    const std::vector<std::string> &names =
        workload::workloadNames();
    std::cerr << "[profile] loading " << names.size()
              << " workload profiles ("
              << analysis::effectiveJobs(jobs, names.size())
              << " jobs) ...\n";
    auto loaded = analysis::runIndexed(
        names.size(), jobs, [&](std::size_t i) {
            return trace::getProfileByName(names[i], opts);
        });
    std::vector<std::pair<std::string, trace::IntervalProfile>> out;
    out.reserve(names.size());
    for (std::size_t i = 0; i < names.size(); ++i) {
        std::cerr << "[profile] " << names[i] << " ... "
                  << loaded[i].numIntervals() << " intervals\n";
        out.emplace_back(names[i], std::move(loaded[i]));
    }
    return out;
}

/**
 * Workload set for a parsed harness invocation: the trace files
 * named by `--trace=` when given (ingested via the content-hashed
 * trace cache, named by their embedded workload names), the full
 * synthetic benchmark set otherwise.
 */
inline std::vector<std::pair<std::string, trace::IntervalProfile>>
loadAllProfiles(const BenchArgs &args,
                const trace::ProfileOptions &opts = {})
{
    if (args.has("trace")) {
        std::vector<std::string> paths =
            splitCsv(args.get("trace", ""));
        if (paths.empty()) {
            std::cerr << "error: --trace expects at least one "
                         ".tpcptrace path\n";
            std::exit(2);
        }
        std::vector<std::pair<std::string, trace::IntervalProfile>>
            out;
        out.reserve(paths.size());
        for (const std::string &path : paths) {
            trace::IntervalProfile p = trace::getTraceProfile(path);
            std::cerr << "[trace] " << path << " -> "
                      << p.workload() << " ... "
                      << p.numIntervals() << " intervals\n";
            std::string name = p.workload();
            out.emplace_back(std::move(name), std::move(p));
        }
        return out;
    }
    return loadAllProfiles(opts, args.jobs);
}

/** Arithmetic mean of a vector (0 when empty). */
inline double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += x;
    return s / static_cast<double>(v.size());
}

/** Prints the standard harness banner. */
inline void
banner(const std::string &figure, const std::string &what)
{
    std::cout
        << "=====================================================\n"
        << figure << ": " << what << "\n"
        << "(Lau, Schoenmackers, Calder - Transition Phase\n"
        << " Classification and Prediction, HPCA 2005)\n"
        << "=====================================================\n\n";
}

} // namespace tpcp::bench

#endif // TPCP_BENCH_BENCH_COMMON_HH
