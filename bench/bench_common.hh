/**
 * @file
 * Shared plumbing for the figure-reproduction harnesses: loads (or
 * builds and caches) the interval profiles of all 11 workloads and
 * provides small aggregation helpers. Every fig*_ binary prints the
 * rows/series of one paper figure.
 *
 * All harnesses accept `--jobs=N` (or `--jobs N`): profile loading
 * and the experiment grid fan out over N threads (0 or omitted = one
 * per hardware thread, 1 = the plain serial loop). Output is
 * bit-identical for every job count — results come back in grid
 * order and each cell is a pure function of its inputs.
 */

#ifndef TPCP_BENCH_BENCH_COMMON_HH
#define TPCP_BENCH_BENCH_COMMON_HH

#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/parallel_runner.hh"
#include "trace/profile_cache.hh"
#include "workload/workload.hh"

namespace tpcp::bench
{

/** Command-line options shared by every harness. */
struct BenchArgs
{
    /** Worker threads: 0 = one per hardware thread, 1 = serial. */
    unsigned jobs = 0;
};

/** Parses a non-negative --jobs value; exits on malformed input. */
inline unsigned
parseJobs(const std::string &value)
{
    char *end = nullptr;
    unsigned long n = std::strtoul(value.c_str(), &end, 10);
    if (value.empty() || *end != '\0') {
        std::cerr << "error: --jobs expects a non-negative integer, "
                     "got '" << value << "'\n";
        std::exit(2);
    }
    return static_cast<unsigned>(n);
}

/** Parses harness arguments (--jobs=N | --jobs N | --help). */
inline BenchArgs
parseArgs(int argc, char **argv)
{
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--jobs=", 0) == 0) {
            args.jobs = parseJobs(arg.substr(7));
        } else if (arg == "--jobs" && i + 1 < argc) {
            args.jobs = parseJobs(argv[++i]);
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: " << argv[0] << " [--jobs=N]\n"
                      << "  --jobs=N  worker threads (0 = one per "
                         "hardware thread, 1 = serial)\n";
            std::exit(0);
        } else {
            std::cerr << "error: unknown argument '" << arg
                      << "' (try --help)\n";
            std::exit(2);
        }
    }
    return args;
}

/**
 * (workload name, profile) for every benchmark, in paper order.
 * Profiles are loaded (or simulated and cached) on @p jobs threads;
 * the result order never depends on the job count.
 */
inline std::vector<std::pair<std::string, trace::IntervalProfile>>
loadAllProfiles(const trace::ProfileOptions &opts = {},
                unsigned jobs = 1)
{
    const std::vector<std::string> &names =
        workload::workloadNames();
    std::cerr << "[profile] loading " << names.size()
              << " workload profiles ("
              << analysis::effectiveJobs(jobs, names.size())
              << " jobs) ...\n";
    auto loaded = analysis::runIndexed(
        names.size(), jobs, [&](std::size_t i) {
            return trace::getProfileByName(names[i], opts);
        });
    std::vector<std::pair<std::string, trace::IntervalProfile>> out;
    out.reserve(names.size());
    for (std::size_t i = 0; i < names.size(); ++i) {
        std::cerr << "[profile] " << names[i] << " ... "
                  << loaded[i].numIntervals() << " intervals\n";
        out.emplace_back(names[i], std::move(loaded[i]));
    }
    return out;
}

/** Arithmetic mean of a vector (0 when empty). */
inline double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += x;
    return s / static_cast<double>(v.size());
}

/** Prints the standard harness banner. */
inline void
banner(const std::string &figure, const std::string &what)
{
    std::cout
        << "=====================================================\n"
        << figure << ": " << what << "\n"
        << "(Lau, Schoenmackers, Calder - Transition Phase\n"
        << " Classification and Prediction, HPCA 2005)\n"
        << "=====================================================\n\n";
}

} // namespace tpcp::bench

#endif // TPCP_BENCH_BENCH_COMMON_HH
