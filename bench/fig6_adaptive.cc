/**
 * @file
 * Figure 6: adaptive per-phase similarity thresholds (performance
 * feedback). CPI CoV, number of phases and transition time for
 * static 25% and 12.5% thresholds vs the dynamic scheme (25% initial
 * threshold, halved when an interval's CPI deviates from the phase
 * average by more than 50%, 25% or 12.5%).
 *
 * Expected shape (paper): dynamic thresholds lower CPI CoV with only
 * small increases in phase count and transition time; programs that
 * do not benefit from a tighter threshold (gzip/g, galgel) are left
 * essentially unchanged, while threshold-sensitive programs (mcf,
 * perl/s) improve markedly.
 */

#include <iostream>

#include "analysis/experiment.hh"
#include "bench_common.hh"
#include "common/ascii_table.hh"

using namespace tpcp;

namespace
{

struct Config
{
    const char *label;
    double threshold;
    bool dynamic;
    double deviation;
};

constexpr Config configs[] = {
    {"25% static", 0.25, false, 0.0},
    {"12.5% static", 0.125, false, 0.0},
    {"25% dyn+50%dev", 0.25, true, 0.50},
    {"25% dyn+25%dev", 0.25, true, 0.25},
    {"25% dyn+12.5%dev", 0.25, true, 0.125},
};
constexpr std::size_t numConfigs =
    sizeof(configs) / sizeof(configs[0]);

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseArgs(
        argc, argv, {bench::traceFlag()});
    bench::banner("Figure 6",
                  "Adaptive similarity thresholds (phase splitting)");
    auto profiles = bench::loadAllProfiles(args);

    std::vector<std::string> headers = {"workload"};
    for (const Config &c : configs)
        headers.push_back(c.label);

    std::vector<phase::ClassifierConfig> grid_cfgs;
    for (const Config &c : configs) {
        phase::ClassifierConfig cfg;
        cfg.numCounters = 16;
        cfg.tableEntries = 32;
        cfg.similarityThreshold = c.threshold;
        cfg.minCountThreshold = 8;
        cfg.adaptiveThreshold = c.dynamic;
        cfg.cpiDeviationThreshold = c.deviation;
        grid_cfgs.push_back(cfg);
    }
    auto results = analysis::runGrid(profiles, grid_cfgs, args.jobs);

    AsciiTable cov(headers);
    AsciiTable phases(headers);
    AsciiTable trans(headers);
    std::vector<std::vector<double>> cov_cols(numConfigs),
        phase_cols(numConfigs), trans_cols(numConfigs);

    for (std::size_t w = 0; w < profiles.size(); ++w) {
        const std::string &name = profiles[w].first;
        cov.row().cell(name);
        phases.row().cell(name);
        trans.row().cell(name);
        for (std::size_t c = 0; c < numConfigs; ++c) {
            const analysis::ClassificationResult &res =
                results[w * numConfigs + c];
            cov.percentCell(res.covCpi);
            phases.cell(static_cast<std::uint64_t>(res.numPhases));
            trans.percentCell(res.transitionFraction);
            cov_cols[c].push_back(res.covCpi);
            phase_cols[c].push_back(
                static_cast<double>(res.numPhases));
            trans_cols[c].push_back(res.transitionFraction);
        }
    }
    cov.row().cell("avg");
    phases.row().cell("avg");
    trans.row().cell("avg");
    for (std::size_t c = 0; c < numConfigs; ++c) {
        cov.percentCell(bench::mean(cov_cols[c]));
        phases.cell(bench::mean(phase_cols[c]), 1);
        trans.percentCell(bench::mean(trans_cols[c]));
    }

    std::cout << "CPI CoV:\n";
    cov.print(std::cout);
    std::cout << "\nNumber of stable phase IDs:\n";
    phases.print(std::cout);
    std::cout << "\nTransition time:\n";
    trans.print(std::cout);
    std::cout << "\nPaper shape check: dynamic thresholds approach "
                 "12.5%-static CoV while\nkeeping phase count and "
                 "transition time near the 25%-static level;\n"
                 "threshold-insensitive programs are unaffected.\n";
    return 0;
}
