/**
 * @file
 * Phase-guided adaptation sweep: policy x workload.
 *
 * The dynamic-reconfiguration payoff experiment the paper motivates
 * (sections 1 and 6.2): with phase IDs and change/length predictions
 * available online, how much of the per-phase-oracle energy-delay
 * saving does a realistic greedy policy capture, and what do the
 * paper's predictors add over last-value tracking
 * (greedy vs greedy-nopred)? Every run is scored against the three
 * baselines (always-big, static-best, per-phase oracle) under the
 * additive interval-EDP objective.
 *
 * Deterministic at any --jobs: each (workload) cell builds its
 * lattice profiles and runs every policy serially inside the cell.
 * Reports are also serialized to JSON (--json).
 */

#include <iostream>

#include "adapt/report.hh"
#include "analysis/parallel_runner.hh"
#include "bench_common.hh"
#include "common/ascii_table.hh"
#include "workload/workload.hh"

using namespace tpcp;

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseArgs(
        argc, argv,
        {{"lattice", true,
          "config lattice: standard | small (default small)"},
         {"core", true,
          "profiling core: simple | ooo (default simple)"},
         {"min-oracle", true,
          "exit 1 if the best greedy oracle fraction across "
          "workloads stays below this (CI tripwire; default off)"},
         {"json", true,
          "write AdaptReport JSON (default adapt_policy.json; "
          "'-' disables)"},
         bench::traceFlag()});
    adapt::ConfigLattice lattice =
        adapt::ConfigLattice::byName(args.get("lattice", "small"));
    std::string json_path = args.get("json", "adapt_policy.json");

    trace::ProfileOptions opts;
    opts.coreName = args.get("core", "simple");

    bench::banner("Phase-guided adaptation",
                  "greedy reconfiguration vs static and oracle "
                  "baselines");
    const std::vector<std::string> &policies =
        adapt::policyPresetNames();

    // Ingested traces replay in recorded-CPI mode (energy-only
    // lattice; see adapt/report.hh) — the trace cannot be
    // re-simulated at other machine configurations.
    std::vector<std::pair<std::string, trace::IntervalProfile>>
        traced;
    std::vector<std::string> names;
    if (args.has("trace")) {
        traced = trace::loadTraceProfiles(args.get("trace", ""));
        for (const auto &[name, profile] : traced)
            names.push_back(name);
    } else {
        names = workload::workloadNames();
    }

    // One parallel cell per workload: simulate/load the lattice
    // profiles once, then run every policy serially inside the
    // cell (profiles dominate the cost; policies replay in
    // microseconds).
    auto per_workload = analysis::runIndexed(
        names.size(), args.jobs, [&](std::size_t w) {
            std::vector<adapt::AdaptReport> reports;
            for (const std::string &policy : policies) {
                if (args.has("trace"))
                    reports.push_back(adapt::runTraceAdaptation(
                        traced[w].second,
                        adapt::policyPresetByName(policy),
                        lattice));
                else
                    reports.push_back(adapt::runAdaptation(
                        names[w], adapt::policyPresetByName(policy),
                        lattice, opts));
            }
            return reports;
        });

    std::vector<adapt::AdaptReport> all;
    for (const auto &reports : per_workload)
        all.insert(all.end(), reports.begin(), reports.end());

    // One table per policy preset.
    for (std::size_t p = 0; p < policies.size(); ++p) {
        AsciiTable table({"workload", "phases", "switches",
                          "policy", "static", "oracle",
                          "of oracle", "slowdown"});
        for (std::size_t w = 0; w < names.size(); ++w) {
            const adapt::AdaptReport &r = per_workload[w][p];
            table.row()
                .cell(r.workload)
                .cell(static_cast<std::uint64_t>(r.numPhases))
                .cell(r.switches.total())
                .percentCell(r.edpSavings(r.policyTotals))
                .percentCell(r.edpSavings(r.staticBest))
                .percentCell(r.edpSavings(r.oracle))
                .percentCell(r.oracleFraction())
                .percentCell(r.slowdown());
        }
        std::cout << "Policy " << policies[p] << " ("
                  << lattice.size() << "-config lattice):\n";
        table.print(std::cout);
        std::cout << "\n";
    }

    // Summary: what the predictors buy (greedy vs greedy-nopred)
    // and how both policies place against the baselines.
    AsciiTable summary({"policy", "avg savings", "avg of oracle",
                        "beats static", ">=90% of oracle"});
    double best_fraction = 0.0;
    for (std::size_t p = 0; p < policies.size(); ++p) {
        std::vector<double> savings, fractions;
        unsigned beats = 0, near_oracle = 0;
        for (std::size_t w = 0; w < names.size(); ++w) {
            const adapt::AdaptReport &r = per_workload[w][p];
            savings.push_back(r.edpSavings(r.policyTotals));
            fractions.push_back(r.oracleFraction());
            if (r.policyTotals.edp < r.staticBest.edp)
                ++beats;
            if (r.oracleFraction() >= 0.90)
                ++near_oracle;
            if (policies[p] == "greedy")
                best_fraction =
                    std::max(best_fraction, r.oracleFraction());
        }
        summary.row()
            .cell(policies[p])
            .percentCell(bench::mean(savings))
            .percentCell(bench::mean(fractions))
            .cell(std::to_string(beats) + "/" +
                  std::to_string(names.size()))
            .cell(std::to_string(near_oracle) + "/" +
                  std::to_string(names.size()));
    }
    summary.print(std::cout);

    if (json_path != "-") {
        if (!adapt::writeJson(json_path, all)) {
            std::cerr << "error: cannot write " << json_path
                      << "\n";
            return 1;
        }
        std::cout << "\nwrote " << all.size() << " reports to "
                  << json_path << "\n";
    }

    if (args.has("min-oracle")) {
        double limit = args.getDouble("min-oracle", 0.0);
        if (best_fraction < limit) {
            std::cerr << "error: best greedy oracle fraction "
                      << best_fraction * 100.0
                      << "% below --min-oracle " << limit * 100.0
                      << "%\n";
            return 1;
        }
        std::cout << "best greedy oracle fraction "
                  << best_fraction * 100.0
                  << "% meets --min-oracle " << limit * 100.0
                  << "%\n";
    }
    return 0;
}
