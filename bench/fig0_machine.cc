/**
 * @file
 * Table 1: prints the baseline simulation model (the machine every
 * profile in this repository is collected on) and basic per-workload
 * simulation statistics from the cached profiles.
 */

#include <iostream>

#include "analysis/cov.hh"
#include "bench_common.hh"
#include "common/ascii_table.hh"
#include "common/running_stats.hh"
#include "uarch/machine_config.hh"

using namespace tpcp;

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseArgs(
        argc, argv, {bench::traceFlag()});
    bench::banner("Table 1", "Baseline Simulation Model");
    std::cout << uarch::MachineConfig::table1().toString() << "\n";

    auto profiles = bench::loadAllProfiles(args);
    AsciiTable table({"workload", "intervals", "insts(M)", "avg CPI",
                      "min CPI", "max CPI", "whole-prog CoV"});
    for (const auto &[name, profile] : profiles) {
        RunningStats cpi;
        for (const auto &rec : profile.intervals())
            cpi.push(rec.cpi);
        table.row()
            .cell(name)
            .cell(static_cast<std::uint64_t>(profile.numIntervals()))
            .cell(static_cast<std::uint64_t>(
                profile.numIntervals() * profile.intervalLength() /
                1'000'000))
            .cell(cpi.mean(), 3)
            .cell(cpi.min(), 3)
            .cell(cpi.max(), 3)
            .percentCell(cpi.cov());
    }
    table.print(std::cout);
    return 0;
}
