/**
 * @file
 * Fault-injection sweep: soft-error rate x targeted structure x
 * mitigation, across all 11 workloads. For each cell the harness
 * replays the workload through a fault-free and a faulted
 * PhaseTracker and reports phase-ID stream agreement plus predictor
 * accuracy deltas (see src/fault/resilience.hh).
 *
 * Every cell's fault stream is seeded from (seed, workload name), so
 * the sweep is byte-identical at any --jobs count — CI diffs the
 * --jobs=1 and --jobs=4 outputs.
 *
 * Options:
 *   --jobs=N      worker threads (0 = one per hardware thread)
 *   --rates=CSV   per-interval fault rates (default
 *                 0.001,0.01,0.05,0.2)
 *   --targets=CSV fault targets (default signature,change-table,all;
 *                 see `tpcp faults --target` for the full list)
 *   --seed=N      campaign seed (default 0x5eedfa17)
 *   --scrub-every=N  mitigated scrub period (default 1)
 *   --json=PATH   write every ResilienceReport as JSON ('-' disables)
 */

#include <cstdio>
#include <sstream>

#include "bench_common.hh"
#include "common/ascii_table.hh"
#include "common/status.hh"
#include "fault/resilience.hh"

using namespace tpcp;

namespace
{

std::vector<std::string>
splitCsv(const std::string &csv)
{
    std::vector<std::string> out;
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseArgs(
        argc, argv,
        {{"rates", true, "per-interval fault rates (CSV)"},
         {"targets", true, "fault targets (CSV)"},
         {"seed", true, "campaign seed"},
         {"scrub-every", true, "mitigated scrub period (intervals)"},
         {"json", true, "write ResilienceReports as JSON"},
         bench::traceFlag()});

    std::vector<double> rates;
    for (const std::string &s :
         splitCsv(args.get("rates", "0.001,0.01,0.05,0.2")))
        rates.push_back(std::strtod(s.c_str(), nullptr));
    std::vector<fault::Target> targets;
    std::vector<std::string> target_names =
        splitCsv(args.get("targets", "signature,change-table,all"));

    bench::banner("fault_sweep",
                  "soft-error resilience: rate x structure x "
                  "mitigation");

    int rc = 0;
    try {
        for (const std::string &t : target_names)
            targets.push_back(fault::targetByName(t));

        auto profiles = bench::loadAllProfiles(args);

        // Flattened deterministic grid: target-major, then rate,
        // then mitigation, then workload. Each cell is a pure
        // function of its inputs, so any job count gives the same
        // byte stream.
        struct Cell
        {
            std::size_t target, rate, workload;
            bool mitigated;
        };
        std::vector<Cell> cells;
        for (std::size_t t = 0; t < targets.size(); ++t)
            for (std::size_t r = 0; r < rates.size(); ++r)
                for (int m = 0; m < 2; ++m)
                    for (std::size_t w = 0; w < profiles.size(); ++w)
                        cells.push_back({t, r, w, m != 0});

        std::uint64_t seed = args.getU64("seed", 0x5eedfa17);
        unsigned scrub = static_cast<unsigned>(
            args.getU64("scrub-every", 1));
        std::vector<fault::ResilienceReport> reports =
            analysis::runIndexed(
                cells.size(), args.jobs, [&](std::size_t i) {
                    const Cell &c = cells[i];
                    fault::ResilienceOptions opts;
                    opts.injector.target = targets[c.target];
                    opts.injector.ratePerInterval = rates[c.rate];
                    opts.injector.mitigated = c.mitigated;
                    opts.injector.seed = seed;
                    opts.scrubEvery = scrub;
                    return fault::runResilience(
                        profiles[c.workload].second, opts);
                });

        // One row per (target, rate, mitigation): workload means.
        AsciiTable table({"target", "rate", "mitigated", "faults",
                          "agreement", "next-phase delta", "ecc",
                          "repairs"});
        for (std::size_t t = 0; t < targets.size(); ++t) {
            for (std::size_t r = 0; r < rates.size(); ++r) {
                for (int m = 0; m < 2; ++m) {
                    std::uint64_t faults = 0, repairs = 0;
                    std::uint64_t ecc = 0;
                    std::vector<double> agree, delta;
                    for (std::size_t i = 0; i < cells.size(); ++i) {
                        const Cell &c = cells[i];
                        if (c.target != t || c.rate != r ||
                            c.mitigated != (m != 0))
                            continue;
                        faults += reports[i].faults.total();
                        repairs += reports[i].repairs;
                        ecc += reports[i].eccCorrections;
                        agree.push_back(reports[i].agreement());
                        delta.push_back(
                            reports[i].nextPhaseDelta());
                    }
                    table.row()
                        .cell(fault::targetName(targets[t]))
                        .cell(rates[r], 4)
                        .cell(m ? "yes" : "no")
                        .cell(faults)
                        .percentCell(bench::mean(agree))
                        .percentCell(bench::mean(delta))
                        .cell(ecc)
                        .cell(repairs);
                }
            }
        }
        table.print(std::cout);

        std::string json = args.get("json", "");
        if (!json.empty() && json != "-") {
            if (!fault::writeJson(json, reports)) {
                std::cerr << "error: cannot write " << json << "\n";
                return 1;
            }
            std::cout << "wrote " << reports.size()
                      << " reports to " << json << "\n";
        }
    } catch (const Error &e) {
        std::cerr << "error: " << e.what() << "\n";
        rc = 1;
    }
    return rc;
}
