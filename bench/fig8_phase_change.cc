/**
 * @file
 * Figure 8: phase-change prediction. For each predictor, the
 * breakdown of *phase-change* outcomes into confident-correct,
 * unconfident-correct, tag misses, unconfident-incorrect and
 * confident-incorrect, plus the perfect-Markov upper bounds.
 *
 * Expected shape (paper): plain Markov-2 predicts ~40% of changes
 * (18% mispredictions); confidence cuts mispredictions to ~5% but
 * coverage to ~19%; Top-4/Last-4 predictors reach 50-65%; perfect
 * Markov-1 tops out near 80% because of cold-start changes.
 */

#include <iostream>

#include "analysis/experiment.hh"
#include "bench_common.hh"
#include "common/ascii_table.hh"
#include "pred/eval.hh"

using namespace tpcp;
using pred::ChangePredictorConfig;
using pred::PayloadView;
using pred::PredictorSpec;

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseArgs(
        argc, argv, {bench::traceFlag()});
    bench::banner("Figure 8", "Phase Change Prediction");
    auto profiles = bench::loadAllProfiles(args);

    phase::ClassifierConfig ccfg =
        phase::ClassifierConfig::paperDefault();
    auto classified =
        analysis::runGrid(profiles, {ccfg}, args.jobs);
    std::vector<std::vector<PhaseId>> traces;
    for (analysis::ClassificationResult &res : classified)
        traces.push_back(std::move(res.trace.phases));

    std::vector<PredictorSpec> bars;
    for (const ChangePredictorConfig &cfg :
         {ChangePredictorConfig::markov(2, PayloadView::Last, 128),
          ChangePredictorConfig::markov(2),
          ChangePredictorConfig::markov(1),
          ChangePredictorConfig::markov(2, PayloadView::Last4),
          ChangePredictorConfig::markov(1, PayloadView::Last4),
          ChangePredictorConfig::markov(2, PayloadView::Top1),
          ChangePredictorConfig::markov(1, PayloadView::Top4),
          ChangePredictorConfig::markov(2, PayloadView::Top4),
          ChangePredictorConfig::rle(2, PayloadView::Last, 128),
          ChangePredictorConfig::rle(2),
          ChangePredictorConfig::rle(2, PayloadView::Last4),
          ChangePredictorConfig::rle(1, PayloadView::Last4),
          ChangePredictorConfig::rle(2, PayloadView::Top1),
          ChangePredictorConfig::rle(1, PayloadView::Top4),
          ChangePredictorConfig::rle(2, PayloadView::Top4)})
        bars.push_back(PredictorSpec::tableSpec(cfg));
    bars.push_back(PredictorSpec::tageSpec());
    bars.push_back(PredictorSpec::perceptronSpec());

    AsciiTable table({"predictor", "conf corr", "unconf corr",
                      "tag miss", "unconf inc", "conf inc",
                      "correct", "conf mispred"});
    auto aggs = analysis::runIndexed(
        bars.size(), args.jobs, [&](std::size_t b) {
            pred::ChangeOutcomeStats agg;
            for (const auto &trace : traces)
                agg.merge(pred::evalChangeOutcome(trace, bars[b]));
            return agg;
        });
    for (std::size_t b = 0; b < bars.size(); ++b) {
        const pred::ChangeOutcomeStats &agg = aggs[b];
        double t = static_cast<double>(agg.changes);
        auto pct = [&](std::uint64_t v) {
            return t ? static_cast<double>(v) / t : 0.0;
        };
        table.row()
            .cell(bars[b].displayName())
            .percentCell(pct(agg.confCorrect))
            .percentCell(pct(agg.unconfCorrect))
            .percentCell(pct(agg.tagMiss))
            .percentCell(pct(agg.unconfIncorrect))
            .percentCell(pct(agg.confIncorrect))
            .percentCell(agg.correctRate())
            .percentCell(pct(agg.confIncorrect));
    }
    for (unsigned order : {1u, 2u}) {
        pred::PerfectMarkovStats agg;
        for (const auto &trace : traces)
            agg.merge(pred::evalPerfectMarkov(trace, order));
        table.row()
            .cell("Perfect Markov-" + std::to_string(order))
            .percentCell(agg.coverage())
            .cell("")
            .percentCell(1.0 - agg.coverage())
            .cell("")
            .cell("")
            .percentCell(agg.coverage())
            .cell("");
    }
    table.print(std::cout);
    std::cout << "\nAll percentages are fractions of phase changes "
                 "(Top-4/Last-4 accept any\nof their candidates as "
                 "correct). Perfect Markov rows mark a change as\n"
                 "covered when the same (history -> outcome) was seen "
                 "before; their miss\nrate is pure cold start.\n";
    return 0;
}
