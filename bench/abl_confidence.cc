/**
 * @file
 * Confidence-counter configuration sweep (paper section 5.1: "We
 * experimented with a variety of confidence counter configurations
 * ... but due to space constraints we only show one configuration").
 * This harness shows the ones the paper left out: last-value
 * confidence accuracy/coverage across counter widths and thresholds,
 * averaged over all workloads.
 */

#include <iostream>

#include "analysis/experiment.hh"
#include "bench_common.hh"
#include "common/ascii_table.hh"
#include "pred/eval.hh"

using namespace tpcp;

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseArgs(
        argc, argv, {bench::traceFlag()});
    bench::banner("Ablation",
                  "Last-value confidence-counter configurations");
    auto profiles = bench::loadAllProfiles(args);

    phase::ClassifierConfig ccfg =
        phase::ClassifierConfig::paperDefault();
    auto classified =
        analysis::runGrid(profiles, {ccfg}, args.jobs);
    std::vector<std::vector<PhaseId>> traces;
    for (analysis::ClassificationResult &res : classified)
        traces.push_back(std::move(res.trace.phases));

    struct Config
    {
        unsigned bits;
        unsigned threshold;
    };
    const Config configs[] = {
        {1, 1}, {2, 2}, {2, 3}, {3, 4}, {3, 6}, {3, 7}, {4, 12},
        {4, 15},
    };

    AsciiTable table({"conf bits", "threshold", "accuracy",
                      "conf accuracy", "conf coverage"});
    for (const Config &c : configs) {
        pred::LastValueConfig lv;
        lv.confBits = c.bits;
        lv.confThreshold = c.threshold;
        pred::NextPhaseStats agg;
        for (const auto &trace : traces)
            agg.merge(pred::evalNextPhase(trace, std::nullopt, lv));
        table.row()
            .cell(static_cast<std::uint64_t>(c.bits))
            .cell(static_cast<std::uint64_t>(c.threshold))
            .percentCell(agg.accuracy())
            .percentCell(agg.confidentAccuracy())
            .percentCell(agg.confidentCoverage());
    }
    table.print(std::cout);
    std::cout << "\nThe paper's pick (3 bits, threshold 6 - one "
                 "below saturation) sits on the\nknee: higher "
                 "thresholds buy little accuracy for a lot of "
                 "coverage.\n";
    return 0;
}
